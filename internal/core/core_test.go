package core

import (
	"math"
	"testing"
	"testing/quick"

	"radiocolor/internal/radio"
)

func testParams() Params {
	return Params{
		Alpha: 3, Beta: 4, Gamma: 2, Sigma: 6,
		N: 64, Delta: 8, Kappa1: 4, Kappa2: 6,
	}
}

func TestParamsDerived(t *testing.T) {
	p := testParams()
	logN := math.Log2(64)
	if got := p.WaitSlots(); got != int64(math.Ceil(3*8*logN)) {
		t.Errorf("WaitSlots = %d", got)
	}
	if got := p.Threshold(); got != int64(math.Ceil(6*8*logN)) {
		t.Errorf("Threshold = %d", got)
	}
	if got := p.CriticalRange(0); got != int64(math.Ceil(2*logN)) {
		t.Errorf("CriticalRange(0) = %d", got)
	}
	if got := p.CriticalRange(3); got != int64(math.Ceil(2*8*logN)) {
		t.Errorf("CriticalRange(3) = %d", got)
	}
	if got := p.ServeSlots(); got != int64(math.Ceil(4*logN)) {
		t.Errorf("ServeSlots = %d", got)
	}
	if got := p.PSend(); got != 1.0/48 {
		t.Errorf("PSend = %v", got)
	}
	if got := p.PLeader(); got != 1.0/6 {
		t.Errorf("PLeader = %v", got)
	}
	if err := p.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestParamsValidate(t *testing.T) {
	bad := []Params{
		{},
		{Alpha: 1, Beta: 1, Gamma: 1, Sigma: 1, N: 0, Delta: 2, Kappa1: 1, Kappa2: 2},
		{Alpha: 1, Beta: 1, Gamma: 1, Sigma: 1, N: 1, Delta: 1, Kappa1: 1, Kappa2: 2},
		{Alpha: 1, Beta: 1, Gamma: 1, Sigma: 1, N: 1, Delta: 2, Kappa1: 3, Kappa2: 2},
		{Alpha: 0, Beta: 1, Gamma: 1, Sigma: 1, N: 1, Delta: 2, Kappa1: 1, Kappa2: 2},
		{Alpha: 1, Beta: 1, Gamma: -1, Sigma: 1, N: 1, Delta: 2, Kappa1: 1, Kappa2: 2},
	}
	for i, p := range bad {
		if p.Validate() == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestParamsScale(t *testing.T) {
	p := testParams().Scale(0.5)
	if p.Alpha != 1.5 || p.Beta != 2 || p.Gamma != 1 || p.Sigma != 3 {
		t.Errorf("Scale wrong: %+v", p)
	}
	if p.N != 64 || p.Delta != 8 {
		t.Error("Scale must not touch estimates")
	}
}

func TestTheoreticalConstants(t *testing.T) {
	// UDG values: κ₁ = 5, κ₂ = 18. The paper's formulas give γ ≈ 127 and
	// σ ≈ 1409 for large Δ.
	p := Theoretical(1000, 50, 5, 18)
	if p.Gamma < 100 || p.Gamma > 160 {
		t.Errorf("γ = %.1f, expected ≈ 127", p.Gamma)
	}
	if p.Sigma < 1300 || p.Sigma > 1500 {
		t.Errorf("σ = %.1f, expected ≈ 1409", p.Sigma)
	}
	if p.Beta < p.Gamma {
		t.Error("Lemma 8 requires β ≥ γ")
	}
	if p.Alpha <= 2*p.Gamma*float64(p.Kappa2)+p.Sigma+1 {
		t.Error("Lemma 7 requires α > 2γκ₂ + σ + 1")
	}
	if err := p.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	// Degenerate inputs are clamped, not crashed.
	q := Theoretical(10, 1, 0, 1)
	if err := q.Validate(); err != nil {
		t.Errorf("clamped Theoretical invalid: %v", err)
	}
}

func TestPracticalFarBelowTheoretical(t *testing.T) {
	th := Theoretical(500, 20, 5, 18)
	pr := Practical(500, 20, 5, 18)
	if pr.Gamma*5 > th.Gamma || pr.Sigma*10 > th.Sigma || pr.Alpha*100 > th.Alpha {
		t.Errorf("practical constants not ≪ theoretical: %+v vs %+v", pr, th)
	}
	if err := pr.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	if q := Practical(10, 1, 0, 0); q.Validate() != nil {
		t.Error("clamped Practical invalid")
	}
}

func TestMessageBits(t *testing.T) {
	// All message types must stay within O(log n): for n = 1024 the id
	// budget is 30 bits, so no message should exceed ~100 bits.
	n := 1024
	msgs := []radio.Message{
		&MsgA{From: 5, Class: 40, Counter: -12345},
		&MsgC{From: 5, Class: 40},
		&MsgAssign{From: 5, To: 9, TC: 30},
		&MsgR{From: 5, Leader: 9},
	}
	for _, m := range msgs {
		b := m.Bits(n)
		if b <= 0 || b > 120 {
			t.Errorf("%v: %d bits", m, b)
		}
		if m.Sender() != 5 {
			t.Errorf("%v: Sender = %d", m, m.Sender())
		}
	}
	// Bits grows logarithmically in n: quadrupling n adds O(1) bits.
	a := (&MsgA{From: 1, Class: 1, Counter: 100}).Bits(1 << 10)
	b := (&MsgA{From: 1, Class: 1, Counter: 100}).Bits(1 << 20)
	if b-a != 30 { // 3·log₂(n) id bits: 3·10 more
		t.Errorf("id scaling: %d → %d", a, b)
	}
}

func TestBitsFor(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{{0, 1}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {255, 8}, {256, 9}}
	for _, c := range cases {
		if got := bitsFor(c.v); got != c.want {
			t.Errorf("bitsFor(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestMessageStrings(t *testing.T) {
	for _, s := range []string{
		(&MsgA{From: 1, Class: 2, Counter: 3}).String(),
		(&MsgC{From: 1, Class: 2}).String(),
		(&MsgAssign{From: 1, To: 2, TC: 3}).String(),
		(&MsgR{From: 1, Leader: 2}).String(),
	} {
		if s == "" {
			t.Error("empty message string")
		}
	}
}

func TestPhaseString(t *testing.T) {
	for p := PhaseAsleep; p <= PhaseColored; p++ {
		if p.String() == "" {
			t.Errorf("phase %d has empty string", p)
		}
	}
	if Phase(99).String() == "" {
		t.Error("unknown phase must still print")
	}
}

// newTestNode builds a node with a fixed stream for white-box tests.
func newTestNode(id radio.NodeID) *Node {
	return NewNode(id, radio.NodeRand(1, id), testParams(), Ablation{})
}

func TestChiAvoidsCriticalRanges(t *testing.T) {
	v := newTestNode(0)
	v.Start(0)
	v.class = 2
	r := v.par.CriticalRange(2)
	// Competitors at counters 0, −3, 100 (all observed at slot 10,
	// queried at slot 10 → d = base).
	v.comp = map[radio.NodeID]competitor{
		1: {base: 0, at: 10},
		2: {base: -3, at: 10},
		3: {base: 100, at: 10},
	}
	x := v.chi(10)
	if x > 0 {
		t.Fatalf("χ = %d > 0", x)
	}
	for _, c := range v.comp {
		d := c.base
		if x >= d-r && x <= d+r {
			t.Fatalf("χ = %d inside critical range of d = %d (r = %d)", x, d, r)
		}
	}
	// With no competitors, χ = 0 (the maximum allowed value).
	v.comp = map[radio.NodeID]competitor{}
	if got := v.chi(10); got != 0 {
		t.Errorf("χ with empty P_v = %d, want 0", got)
	}
}

func TestChiAccountsForElapsedSlots(t *testing.T) {
	v := newTestNode(0)
	v.Start(0)
	v.class = 0
	r := v.par.CriticalRange(0)
	// A competitor reported counter 5 at slot 0; by slot 40 its local
	// copy is 45.
	v.comp = map[radio.NodeID]competitor{1: {base: 5, at: 0}}
	x := v.chi(40)
	d := int64(45)
	if x >= d-r && x <= d+r {
		t.Fatalf("χ = %d inside range of aged copy d = %d", x, d)
	}
	// 0 is below the aged interval, so χ should be exactly 0.
	if d-r > 0 && x != 0 {
		t.Errorf("χ = %d, want 0 (interval fully positive)", x)
	}
}

// Property: χ is never inside any competitor's critical range and never
// positive, for arbitrary competitor configurations.
func TestQuickChiProperty(t *testing.T) {
	f := func(bases []int16, slotOff uint8) bool {
		v := newTestNode(0)
		v.Start(0)
		v.class = 1
		slot := int64(slotOff)
		v.comp = make(map[radio.NodeID]competitor)
		for i, b := range bases {
			if i >= 12 {
				break
			}
			v.comp[radio.NodeID(i+1)] = competitor{base: int64(b), at: 0}
		}
		r := v.par.CriticalRange(1)
		x := v.chi(slot)
		if x > 0 {
			return false
		}
		for _, c := range v.comp {
			d := c.base + slot
			if x >= d-r && x <= d+r {
				return false
			}
		}
		// Maximality: x is either 0 or sits exactly one below some
		// interval's lower edge.
		if x != 0 {
			edge := false
			for _, c := range v.comp {
				if x == c.base+slot-r-1 {
					edge = true
				}
			}
			if !edge {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestNodeInitialState(t *testing.T) {
	v := newTestNode(7)
	if v.Phase() != PhaseAsleep || v.Done() || v.Color() != -1 || v.TC() != -1 {
		t.Errorf("fresh node state wrong: %v %v %v %v", v.Phase(), v.Done(), v.Color(), v.TC())
	}
	v.Start(5)
	if v.Phase() != PhaseWaiting || v.Class() != 0 {
		t.Errorf("after Start: phase=%v class=%d", v.Phase(), v.Class())
	}
}

func TestNewNodePanicsOnBadParams(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewNode(0, radio.NodeRand(1, 0), Params{}, Ablation{})
}

func TestNodeWaitingIsSilent(t *testing.T) {
	v := newTestNode(0)
	v.Start(0)
	w := v.par.WaitSlots()
	for s := int64(0); s < w-1; s++ {
		if msg := v.Send(s); msg != nil {
			t.Fatalf("waiting node transmitted at slot %d", s)
		}
	}
	if v.Phase() != PhaseWaiting {
		t.Fatalf("left waiting phase too early")
	}
	v.Send(w - 1)
	if v.Phase() != PhaseActive {
		t.Fatal("waiting phase did not end after ⌈αΔ log n⌉ slots")
	}
}

func TestLoneNodeBecomesLeader(t *testing.T) {
	v := newTestNode(0)
	v.Start(0)
	want := v.par.WaitSlots() + v.par.Threshold()
	var slot int64
	for slot = 0; slot < want+10; slot++ {
		v.Send(slot)
		if v.Done() {
			break
		}
	}
	if !v.Done() || !v.IsLeader() {
		t.Fatalf("lone node: done=%v color=%d", v.Done(), v.Color())
	}
	// Decision slot: wait W slots, then counter rises from 0 to the
	// threshold, one increment per slot.
	if slot != want-1 {
		t.Errorf("decided at slot %d, want %d", slot, want-1)
	}
}

func TestCoveredNodeMovesToRequest(t *testing.T) {
	v := newTestNode(0)
	v.Start(0)
	v.Send(0)
	v.Recv(0, &MsgC{From: 9, Class: 0})
	if v.Phase() != PhaseRequest || v.Leader() != 9 {
		t.Fatalf("phase=%v leader=%d", v.Phase(), v.Leader())
	}
	// In R the node transmits M_R eventually.
	sawRequest := false
	for s := int64(1); s < 5000 && !sawRequest; s++ {
		if msg := v.Send(s); msg != nil {
			r, ok := msg.(*MsgR)
			if !ok {
				t.Fatalf("unexpected message %v in R", msg)
			}
			if r.Leader != 9 || r.From != 0 {
				t.Fatalf("bad request %v", r)
			}
			sawRequest = true
		}
	}
	if !sawRequest {
		t.Fatal("requesting node never transmitted")
	}
	// Assignment addressed elsewhere is ignored…
	v.Recv(10, &MsgAssign{From: 9, To: 5, TC: 1})
	if v.Phase() != PhaseRequest {
		t.Fatal("moved on foreign assignment")
	}
	// …from a different leader too…
	v.Recv(11, &MsgAssign{From: 8, To: 0, TC: 2})
	if v.Phase() != PhaseRequest {
		t.Fatal("moved on assignment from foreign leader")
	}
	// …but the addressed one advances to A_{tc(κ₂+1)}.
	v.Recv(12, &MsgAssign{From: 9, To: 0, TC: 3})
	if v.Phase() != PhaseWaiting || v.TC() != 3 {
		t.Fatalf("phase=%v tc=%d", v.Phase(), v.TC())
	}
	wantClass := int32(3 * (6 + 1))
	if v.Class() != wantClass {
		t.Errorf("class = %d, want %d", v.Class(), wantClass)
	}
}

func TestHigherClassCoverageAdvances(t *testing.T) {
	v := newTestNode(0)
	v.Start(0)
	v.class = 5
	v.phase = PhaseActive
	v.Recv(0, &MsgC{From: 2, Class: 4}) // wrong class: ignored
	if v.Class() != 5 || v.Phase() != PhaseActive {
		t.Fatal("reacted to foreign class")
	}
	v.Recv(0, &MsgC{From: 2, Class: 5})
	if v.Class() != 6 || v.Phase() != PhaseWaiting {
		t.Fatalf("class=%d phase=%v, want 6 waiting", v.Class(), v.Phase())
	}
	if v.ClassMoves() != 1 {
		t.Errorf("ClassMoves = %d", v.ClassMoves())
	}
}

func TestCriticalRangeReset(t *testing.T) {
	v := newTestNode(0)
	v.Start(0)
	v.phase = PhaseActive
	v.class = 0
	v.counter = 100
	r := v.par.CriticalRange(0)
	// Far counter: no reset.
	v.Recv(0, &MsgA{From: 1, Class: 0, Counter: 100 + r + 1})
	if v.counter != 100 || v.Resets() != 0 {
		t.Fatalf("far counter reset us: counter=%d", v.counter)
	}
	// Within range: reset to χ ≤ 0.
	v.Recv(1, &MsgA{From: 2, Class: 0, Counter: 100 + r})
	if v.counter > 0 || v.Resets() != 1 {
		t.Fatalf("no reset: counter=%d resets=%d", v.counter, v.Resets())
	}
	// Wrong class: ignored entirely.
	before := v.counter
	v.Recv(2, &MsgA{From: 3, Class: 7, Counter: before})
	if v.counter != before || len(v.comp) != 3 {
		// comp has senders 1, 2 (class 0); sender 3 must not appear.
		if _, ok := v.comp[3]; ok {
			t.Fatal("foreign-class competitor recorded")
		}
	}
}

func TestNaiveResetAblation(t *testing.T) {
	v := NewNode(0, radio.NodeRand(1, 0), testParams(), Ablation{NaiveReset: true})
	v.Start(0)
	v.phase = PhaseActive
	v.counter = 50
	v.Recv(0, &MsgA{From: 1, Class: 0, Counter: 60})
	if v.counter != 0 {
		t.Errorf("naive reset → 0, got %d", v.counter)
	}
	v.counter = 50
	v.Recv(1, &MsgA{From: 1, Class: 0, Counter: 40})
	if v.counter != 50 {
		t.Errorf("naive scheme must ignore smaller counters, got %d", v.counter)
	}
}

func TestNoCompetitorListAblation(t *testing.T) {
	v := NewNode(0, radio.NodeRand(1, 0), testParams(), Ablation{NoCompetitorList: true})
	v.Start(0)
	v.phase = PhaseActive
	v.class = 0
	v.counter = 10
	v.Recv(0, &MsgA{From: 1, Class: 0, Counter: 12})
	if v.counter != 0 {
		t.Errorf("ablated χ must be 0, got %d", v.counter)
	}
}

func TestLeaderQueueService(t *testing.T) {
	v := newTestNode(0)
	v.Start(0)
	v.class = 0
	v.becomeColored()
	if !v.IsLeader() || v.Color() != 0 {
		t.Fatal("becomeColored(0) broken")
	}
	// Request from node 5 addressed to us: queued once.
	v.Recv(0, &MsgR{From: 5, Leader: 0})
	v.Recv(1, &MsgR{From: 5, Leader: 0})
	v.Recv(2, &MsgR{From: 6, Leader: 0})
	v.Recv(3, &MsgR{From: 7, Leader: 3}) // foreign leader: ignored
	if len(v.queue) != 2 {
		t.Fatalf("queue = %v", v.queue)
	}
	// Drive the service loop; we must observe assignments tc=1 to node 5
	// then tc=2 to node 6, each within a serve window.
	assigns := make(map[radio.NodeID]int32)
	serve := v.par.ServeSlots()
	for s := int64(0); s < 40*serve; s++ {
		if msg := v.coloredSend(); msg != nil {
			if a, ok := msg.(*MsgAssign); ok {
				if prev, seen := assigns[a.To]; seen && prev != a.TC {
					t.Fatalf("node %d assigned twice: %d then %d", a.To, prev, a.TC)
				}
				assigns[a.To] = a.TC
			}
		}
		if len(v.queue) == 0 && v.serveLeft == 0 {
			break
		}
	}
	if assigns[5] != 1 || assigns[6] != 2 {
		t.Fatalf("assignments = %v, want 5→1, 6→2", assigns)
	}
	// Re-request after service: re-queued with a fresh tc (faithful to
	// the pseudocode).
	v.Recv(100, &MsgR{From: 5, Leader: 0})
	if len(v.queue) != 1 {
		t.Fatal("served node not re-queued on re-request")
	}
}

func TestLeaderBeaconsWhenIdle(t *testing.T) {
	v := newTestNode(0)
	v.Start(0)
	v.class = 0
	v.becomeColored()
	saw := false
	for s := 0; s < 200 && !saw; s++ {
		if msg := v.coloredSend(); msg != nil {
			c, ok := msg.(*MsgC)
			if !ok || c.Class != 0 {
				t.Fatalf("idle leader sent %v", msg)
			}
			saw = true
		}
	}
	if !saw {
		t.Fatal("idle leader never beaconed")
	}
}

func TestColoredNonLeaderAnnounces(t *testing.T) {
	v := newTestNode(0)
	v.Start(0)
	v.class = 9
	v.becomeColored()
	if v.Color() != 9 || v.IsLeader() {
		t.Fatal("becomeColored(9) broken")
	}
	saw := false
	for s := int64(0); s < 5000 && !saw; s++ {
		if msg := v.Send(s); msg != nil {
			c, ok := msg.(*MsgC)
			if !ok || c.Class != 9 {
				t.Fatalf("colored node sent %v", msg)
			}
			saw = true
		}
	}
	if !saw {
		t.Fatal("colored node never announced")
	}
}

func TestNodesBuilder(t *testing.T) {
	nodes, protos := Nodes(5, 42, testParams(), Ablation{})
	if len(nodes) != 5 || len(protos) != 5 {
		t.Fatal("wrong lengths")
	}
	for i := range nodes {
		if protos[i] != radio.Protocol(nodes[i]) {
			t.Fatal("protocol slice mismatched")
		}
	}
}

// TestFact1 numerically validates the paper's Fact 1, which every
// probability bound in Sect. 5 leans on:
//
//	e^t (1 − t²/n) ≤ (1 + t/n)^n ≤ e^t   for n ≥ 1, |t| ≤ n.
func TestFact1(t *testing.T) {
	f := func(nRaw uint16, tRaw int16) bool {
		n := float64(nRaw%1000) + 1
		tv := float64(tRaw) / 32768 * n // |t| ≤ n
		mid := math.Pow(1+tv/n, n)
		hi := math.Exp(tv)
		lo := math.Exp(tv) * (1 - tv*tv/n)
		const eps = 1e-9
		return lo <= mid*(1+eps)+eps && mid <= hi*(1+eps)+eps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestLeaderAssignmentMemory(t *testing.T) {
	// Faithful pseudocode: re-request after removal gets a FRESH tc.
	// Memory ablation: the original tc is re-served.
	for _, memory := range []bool{false, true} {
		v := NewNode(0, radio.NodeRand(1, 0), testParams(), Ablation{LeaderAssignmentMemory: memory})
		v.Start(0)
		v.class = 0
		v.becomeColored()
		serve := func(w radio.NodeID) int32 {
			v.Recv(0, &MsgR{From: w, Leader: 0})
			var tc int32 = -1
			for s := int64(0); s < 50*v.par.ServeSlots(); s++ {
				if msg := v.coloredSend(); msg != nil {
					if a, ok := msg.(*MsgAssign); ok && a.To == w {
						tc = a.TC
					}
				}
				if len(v.queue) == 0 && v.serveLeft == 0 {
					break
				}
			}
			if tc < 0 {
				t.Fatalf("memory=%v: node %d never served", memory, w)
			}
			return tc
		}
		first := serve(5)
		serve(6) // interleave another node
		second := serve(5)
		if memory && second != first {
			t.Errorf("memory variant reassigned %d → %d", first, second)
		}
		if !memory && second == first {
			t.Errorf("faithful variant reused tc %d", first)
		}
	}
}

func TestLeaderAssignmentMemoryEndToEnd(t *testing.T) {
	// Under heavy loss (drops force re-requests), the memory variant
	// still produces a correct coloring (exercised via the ids path in
	// the integration tests; here the point is it does not regress).
	par := testParams()
	v := NewNode(0, radio.NodeRand(2, 0), par, Ablation{LeaderAssignmentMemory: true})
	v.Start(0)
	v.class = 0
	v.becomeColored()
	if v.assigned == nil {
		t.Fatal("assignment memory not initialized")
	}
}
