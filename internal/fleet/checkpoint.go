package fleet

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"log"
	"os"
)

// Checkpoint is a JSONL store of finished job payloads. Every line is
// one record {"id", "attempts", "payload"}; the engine appends a record
// the moment a job succeeds, so a killed sweep loses at most the jobs
// that were in flight. A truncated final line (the signature of a kill
// mid-write) is tolerated and that job simply recomputes; any earlier
// malformed line is reported as corruption.
type Checkpoint struct {
	// Path is the JSONL file. It is created on first append.
	Path string
	// Encode serializes a payload for storage. Defaults to
	// json.Marshal.
	Encode func(any) ([]byte, error)
	// Decode revives a stored payload. Defaults to returning the raw
	// bytes as json.RawMessage.
	Decode func([]byte) (any, error)
	// Warn receives non-fatal load diagnostics — notably the dropped
	// truncated final line after a mid-write kill. Defaults to the
	// standard logger. Silence loss of work is worse than noise: the
	// skipped job recomputes either way, but the operator should know
	// the file was cut short.
	Warn func(string)
}

// record is the on-disk line format.
type record struct {
	ID       string          `json:"id"`
	Attempts int             `json:"attempts"`
	Payload  json.RawMessage `json:"payload"`
}

// maxRecordBytes bounds a single checkpoint line (a rendered experiment
// table is a few KB; 16MB leaves room for far larger payloads).
const maxRecordBytes = 16 << 20

func (c *Checkpoint) encode(v any) ([]byte, error) {
	if c.Encode != nil {
		return c.Encode(v)
	}
	return json.Marshal(v)
}

func (c *Checkpoint) decode(b []byte) (any, error) {
	if c.Decode != nil {
		return c.Decode(b)
	}
	return json.RawMessage(b), nil
}

// load reads the store into an id → payload map (the last record for an
// id wins, so a re-run after a crash-and-retry sees the newest payload).
func (c *Checkpoint) load() (map[string][]byte, error) {
	f, err := os.Open(c.Path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("fleet: checkpoint: %w", err)
	}
	defer f.Close()
	done := make(map[string][]byte)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 64<<10), maxRecordBytes)
	var bad error
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		if bad != nil {
			// A malformed line followed by more data is corruption, not
			// a truncated tail.
			return nil, bad
		}
		var r record
		if err := json.Unmarshal(line, &r); err != nil || r.ID == "" {
			bad = fmt.Errorf("fleet: checkpoint %s: malformed record: %q", c.Path, truncateForErr(line))
			continue
		}
		payload := make([]byte, len(r.Payload))
		copy(payload, r.Payload)
		done[r.ID] = payload
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("fleet: checkpoint %s: %w", c.Path, err)
	}
	if bad != nil {
		// The malformed line was the file's last: a writer killed
		// mid-append, not corruption. Skip it loudly — that job simply
		// recomputes.
		c.warn(fmt.Sprintf("fleet: checkpoint %s: dropping truncated final line (%v); the job recomputes", c.Path, bad))
	}
	return done, nil
}

func (c *Checkpoint) warn(msg string) {
	if c.Warn != nil {
		c.Warn(msg)
		return
	}
	log.Print(msg)
}

// openAppend opens the store for streaming appends.
func (c *Checkpoint) openAppend() (*checkpointWriter, error) {
	f, err := os.OpenFile(c.Path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("fleet: checkpoint: %w", err)
	}
	return &checkpointWriter{f: f}, nil
}

// checkpointWriter appends records; the engine serializes calls.
type checkpointWriter struct {
	f *os.File
}

func (w *checkpointWriter) append(id string, attempts int, value any, c *Checkpoint) error {
	payload, err := c.encode(value)
	if err != nil {
		return fmt.Errorf("fleet: checkpoint: encode job %q: %w", id, err)
	}
	line, err := json.Marshal(record{ID: id, Attempts: attempts, Payload: payload})
	if err != nil {
		return fmt.Errorf("fleet: checkpoint: job %q: %w", id, err)
	}
	line = append(line, '\n')
	if _, err := w.f.Write(line); err != nil {
		return fmt.Errorf("fleet: checkpoint: %w", err)
	}
	return nil
}

func (w *checkpointWriter) close() error { return w.f.Close() }

func truncateForErr(b []byte) string {
	const n = 120
	if len(b) > n {
		return string(b[:n]) + "…"
	}
	return string(b)
}
