package radiocolor

import (
	"errors"
	"fmt"
	"io"

	"radiocolor/internal/obs"
)

// Wakeup selects the wake-up schedule of a run. The paper's guarantees
// hold for every schedule, including the adversarial one.
type Wakeup uint8

const (
	// WakeupSynchronous wakes every node in slot 0 (the default).
	WakeupSynchronous Wakeup = iota
	// WakeupUniform wakes nodes uniformly at random over a span
	// proportional to the protocol's waiting period.
	WakeupUniform
	// WakeupSequential wakes nodes one by one at a fixed gap.
	WakeupSequential
	// WakeupBursty wakes nodes in groups separated by quiet periods.
	WakeupBursty
	// WakeupAdversarial staggers wake-ups to maximize the overlap of
	// waiting periods — the hardest schedule for the protocol.
	WakeupAdversarial

	numWakeups
)

var wakeupNames = [numWakeups]string{
	"synchronous", "uniform", "sequential", "bursty", "adversarial",
}

// String returns the schedule's name (the value accepted by
// ParseWakeup and the -wakeup CLI flags).
func (w Wakeup) String() string {
	if w < numWakeups {
		return wakeupNames[w]
	}
	return fmt.Sprintf("wakeup(%d)", uint8(w))
}

// ParseWakeup maps a schedule name to its Wakeup constant.
func ParseWakeup(name string) (Wakeup, error) {
	for i, s := range wakeupNames {
		if s == name {
			return Wakeup(i), nil
		}
	}
	return 0, fmt.Errorf("radiocolor: unknown wakeup pattern %q", name)
}

// Options configures a coloring run. The zero value is a sensible
// default: synchronous wake-up, practical constants, automatic budget,
// observability disabled.
type Options struct {
	// Seed drives all randomness (placement excluded); runs with equal
	// seeds are bit-identical. Defaults to 1.
	Seed int64
	// Wakeup selects the wake-up schedule (default WakeupSynchronous).
	Wakeup Wakeup
	// WakeupName selects the wake-up schedule by name and overrides
	// Wakeup when non-empty.
	//
	// Deprecated: use the typed Wakeup constants instead.
	WakeupName string
	// ParamScale multiplies the practical protocol constants
	// (default 1.0). Larger is safer but slower; experiment E7 maps the
	// trade-off.
	ParamScale float64
	// MaxSlots caps the simulation (0 = automatic generous budget).
	MaxSlots int64
	// Workers > 1 runs the simulator's send phase on several
	// goroutines. Results are bit-identical to the sequential engine:
	// every node owns an independent random stream, so the schedule of
	// goroutines cannot leak into the outcome.
	Workers int

	// Tiling selects the tiled cache-blocked slot kernel for large
	// runs: -1 lets the engine pick a tile count (~32k-node tiles),
	// values > 1 fix it, and 0 (the default) keeps the classic untiled
	// kernel. When enabled, the run first renumbers the graph with the
	// shared locality pass (a Hilbert curve when node positions are
	// known, BFS order otherwise) so that tiles are spatially
	// contiguous; every Outcome field — colors, leaders, latencies,
	// fault reports — and every Observer/Trace event is mapped back to
	// the caller's node ids. A tiled run is deterministic in Seed and
	// identical at any Workers count, but it is a different random
	// execution than the untiled run (node random streams attach to
	// the relabeled ids), so its colors differ numerically from a
	// Tiling=0 run while satisfying exactly the same guarantees. The
	// relabeling is skipped (and the knob passed through to the engine,
	// which ignores it) when a Medium or clock-skew faults are
	// configured: those paths own slot resolution and never tile.
	Tiling int

	// Measured, when non-nil, supplies precomputed graph parameters
	// (max degree and the κ growth constants) so the run skips the
	// measurement pass — the dominant setup cost on repeated workloads.
	// The serving layer (internal/serve) caches these per topology.
	// Callers are trusted: supplying values that differ from what
	// measurement would return changes the protocol constants (and so
	// the outcome), exactly as the paper's "rough bounds known at
	// deployment time" would.
	Measured *Measured

	// Faults, when non-nil, injects deterministic faults — link loss,
	// burst fading, node crashes, jammers, clock skew — into the run
	// (see FaultConfig). The Outcome then carries a FaultOutcome with
	// the injected-event counts and the graceful-degradation verdict.
	Faults *FaultConfig

	// Churn, when non-nil, changes the topology mid-run — late joins,
	// scheduled departures, rejoins, waypoint mobility — with optional
	// self-stabilizing conflict repair (see ChurnConfig). The Outcome
	// then carries a ChurnOutcome with the applied-event counts and the
	// proper-coloring verdict over the nodes still present. Mobility
	// needs positions (geometric entry points only), and Churn cannot
	// combine with a Medium or clock-skew faults.
	Churn *ChurnConfig

	// Medium, when non-nil, swaps the reception model — SINR with
	// cumulative interference, multi-channel hopping — in place of the
	// paper's exactly-one-transmitter rule (see MediumConfig). nil keeps
	// the engine's built-in fast path, bit-identical to earlier
	// releases. A "sinr" medium needs node positions, so it works only
	// through the geometric entry points (ColorUnitDisk and friends),
	// and no medium combines with clock-skew fault profiles.
	Medium *MediumConfig

	// Observer, when non-nil, receives every simulation event (see the
	// Observer interface). The disabled path costs one nil check per
	// event and allocates nothing.
	Observer Observer
	// Trace, when non-nil, streams every simulation event as JSONL to
	// the configured destination; summarize the file with cmd/tracestat
	// or obs.Summarize. Tracing is independent of Observer and Metrics.
	Trace *TraceConfig
	// Metrics, when true, attaches an Outcome.Stats snapshot: event
	// counters, collision rate, throughput and the per-phase timeline.
	Metrics bool
}

// Measured carries precomputed graph parameters for Options.Measured.
// Obtain the values from a previous Outcome (Delta, Kappa1, Kappa2) of
// a run on the same graph.
type Measured struct {
	// Delta is the maximum node degree (neighbors, exclusive).
	Delta int
	// Kappa1 and Kappa2 are the bounded-independence growth constants
	// of Definition 1.
	Kappa1, Kappa2 int
}

// TraceConfig configures slot-level JSONL tracing. Exactly one of Path
// and W must be set.
type TraceConfig struct {
	// Path is the JSONL file to create (truncated if it exists).
	Path string
	// W receives the JSONL stream instead of a file.
	W io.Writer
	// Cap bounds the in-memory tail ring (default 4096 events); the
	// JSONL destination always receives every event.
	Cap int
	// Kinds restricts tracing to the named event kinds ("tx", "rx",
	// "coll", "decide", "wake", "phase"); empty traces everything.
	// Filtering out "phase" events makes the per-phase attribution of a
	// later replay (cmd/tracestat) degenerate to the asleep phase.
	Kinds []string
}

// Validate reports whether the options are well-formed. ColorGraph and
// friends call it before any expensive work (graph parameter
// measurement, simulation), so a misconfigured run fails immediately.
func (o Options) Validate() error {
	if o.ParamScale < 0 {
		return fmt.Errorf("radiocolor: negative ParamScale %g", o.ParamScale)
	}
	if o.MaxSlots < 0 {
		return fmt.Errorf("radiocolor: negative MaxSlots %d", o.MaxSlots)
	}
	if o.Workers < 0 {
		return fmt.Errorf("radiocolor: negative Workers %d", o.Workers)
	}
	if o.Tiling < -1 {
		return fmt.Errorf("radiocolor: invalid Tiling %d (want -1 for auto, 0 for off, or a tile count)", o.Tiling)
	}
	if m := o.Measured; m != nil {
		if m.Delta < 0 {
			return fmt.Errorf("radiocolor: negative Measured.Delta %d", m.Delta)
		}
		if m.Kappa1 < 1 || m.Kappa2 < 1 {
			return fmt.Errorf("radiocolor: Measured κ values must be ≥ 1 (got κ₁=%d, κ₂=%d)", m.Kappa1, m.Kappa2)
		}
	}
	if _, err := o.wakeup(); err != nil {
		return err
	}
	if o.Faults != nil {
		// Structural validation only; node ranges are checked against
		// the graph when the profile is compiled.
		if err := o.Faults.profile().Validate(0); err != nil {
			return fmt.Errorf("radiocolor: %w", err)
		}
	}
	if m := o.Medium; m != nil {
		if err := m.spec().Validate(); err != nil {
			return fmt.Errorf("radiocolor: %w", err)
		}
		if o.Faults != nil && o.Faults.SkewProb > 0 {
			return errors.New("radiocolor: a Medium cannot combine with clock-skew faults (the half-slot engine has no medium seam)")
		}
	}
	if c := o.Churn; c.active() {
		sch, err := c.schedule()
		if err != nil {
			return err
		}
		// Structural validation only; node ranges and the geometry
		// requirement are checked when the schedule is compiled against
		// the graph.
		if err := sch.Validate(0); err != nil {
			return fmt.Errorf("radiocolor: %w", err)
		}
		if o.Medium != nil {
			return errors.New("radiocolor: Churn cannot combine with a Medium (media bind to a static graph)")
		}
		if o.Faults != nil && o.Faults.SkewProb > 0 {
			return errors.New("radiocolor: Churn cannot combine with clock-skew faults (the half-slot engine has no churn seam)")
		}
	}
	if t := o.Trace; t != nil {
		if t.Path == "" && t.W == nil {
			return errors.New("radiocolor: TraceConfig needs Path or W")
		}
		if t.Path != "" && t.W != nil {
			return errors.New("radiocolor: TraceConfig has both Path and W")
		}
		if t.Cap < 0 {
			return fmt.Errorf("radiocolor: negative trace Cap %d", t.Cap)
		}
		for _, k := range t.Kinds {
			if _, err := obs.ParseKind(k); err != nil {
				return fmt.Errorf("radiocolor: %w", err)
			}
		}
	}
	return nil
}

// wakeup resolves the schedule selection, honoring the deprecated
// WakeupName override.
func (o Options) wakeup() (Wakeup, error) {
	if o.WakeupName != "" {
		return ParseWakeup(o.WakeupName)
	}
	if o.Wakeup >= numWakeups {
		return 0, fmt.Errorf("radiocolor: invalid wakeup %d", uint8(o.Wakeup))
	}
	return o.Wakeup, nil
}

func (o Options) normalized() Options {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.ParamScale <= 0 {
		o.ParamScale = 1
	}
	return o
}
