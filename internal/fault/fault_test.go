package fault

import (
	"math"
	"reflect"
	"testing"
)

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		p    Profile
		ok   bool
	}{
		{"zero", Profile{}, true},
		{"loss", Profile{Loss: 0.5}, true},
		{"loss-high", Profile{Loss: 1.5}, false},
		{"loss-neg", Profile{Loss: -0.1}, false},
		{"skew-high", Profile{SkewProb: 2}, false},
		{"burst", Profile{Burst: &Burst{PBad: 0.2, Window: 32}}, true},
		{"burst-window", Profile{Burst: &Burst{PBad: 0.2, Window: 0}}, false},
		{"burst-pbad", Profile{Burst: &Burst{PBad: -1, Window: 8}}, false},
		{"crash", Profile{Crashes: []Crash{{Node: 1, At: 10}}}, true},
		{"crash-restart", Profile{Crashes: []Crash{{Node: 1, At: 10, Restart: 20}}}, true},
		{"crash-restart-before", Profile{Crashes: []Crash{{Node: 1, At: 10, Restart: 5}}}, false},
		{"crash-dup", Profile{Crashes: []Crash{{Node: 1, At: 10}, {Node: 1, At: 20}}}, false},
		{"crash-range", Profile{Crashes: []Crash{{Node: 9, At: 0}}}, false},
		{"crash-neg", Profile{Crashes: []Crash{{Node: -1, At: 0}}}, false},
		{"jam", Profile{Jammers: []Jammer{{From: 0, Until: 100}}}, true},
		{"jam-until", Profile{Jammers: []Jammer{{From: 50, Until: 10}}}, false},
		{"jam-duty", Profile{Jammers: []Jammer{{Period: 4, Duty: 5}}}, false},
		{"jam-victim-range", Profile{Jammers: []Jammer{{Nodes: []int{12}}}}, false},
		{"jam-prob", Profile{Jammers: []Jammer{{Prob: 1.2}}}, false},
	}
	for _, tc := range cases {
		err := tc.p.Validate(5)
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: want error, got nil", tc.name)
		}
	}
}

func TestCompileInactive(t *testing.T) {
	inj, err := (&Profile{}).Compile(10)
	if err != nil || inj != nil {
		t.Fatalf("inactive profile: got (%v, %v), want (nil, nil)", inj, err)
	}
	var nilP *Profile
	if nilP.Active() {
		t.Fatal("nil profile reports Active")
	}
	inj, err = nilP.Compile(10)
	if err != nil || inj != nil {
		t.Fatalf("nil profile: got (%v, %v), want (nil, nil)", inj, err)
	}
}

func TestLossRateAndDeterminism(t *testing.T) {
	inj, err := (&Profile{Seed: 7, Loss: 0.3}).Compile(4)
	if err != nil {
		t.Fatal(err)
	}
	lost := 0
	const trials = 20000
	for s := int64(0); s < trials; s++ {
		a := inj.Lost(s, 0, 1)
		if b := inj.Lost(s, 0, 1); a != b {
			t.Fatalf("slot %d: Lost not deterministic", s)
		}
		if a {
			lost++
		}
	}
	rate := float64(lost) / trials
	if math.Abs(rate-0.3) > 0.02 {
		t.Fatalf("loss rate %g, want ~0.3", rate)
	}
	// Different links see independent coins.
	same := 0
	for s := int64(0); s < 1000; s++ {
		if inj.Lost(s, 0, 1) == inj.Lost(s, 2, 3) {
			same++
		}
	}
	if same == 1000 {
		t.Fatal("links (0,1) and (2,3) saw identical loss streams")
	}
}

func TestBurstWindows(t *testing.T) {
	// Total fade in bad windows, lossless in good ones: within any one
	// window the outcome must be constant for a given link.
	inj, err := (&Profile{Seed: 3, Burst: &Burst{PBad: 0.5, Window: 16, LossBad: 1, LossGood: 0}}).Compile(2)
	if err != nil {
		t.Fatal(err)
	}
	bad := 0
	for w := int64(0); w < 500; w++ {
		first := inj.Lost(w*16, 0, 1)
		for s := w * 16; s < (w+1)*16; s++ {
			if inj.Lost(s, 0, 1) != first {
				t.Fatalf("window %d: loss state flipped mid-window at slot %d", w, s)
			}
		}
		if first {
			bad++
		}
	}
	if bad < 150 || bad > 350 {
		t.Fatalf("bad windows = %d/500, want ~250 for PBad=0.5", bad)
	}
}

func TestJammerSchedule(t *testing.T) {
	p := &Profile{Jammers: []Jammer{{Nodes: []int{2}, From: 10, Until: 30, Period: 5, Duty: 2}}}
	inj, err := p.Compile(4)
	if err != nil {
		t.Fatal(err)
	}
	for slot := int64(0); slot < 40; slot++ {
		inWindow := slot >= 10 && slot < 30 && (slot-10)%5 < 2
		if got := inj.Jammed(slot, 2); got != inWindow {
			t.Errorf("slot %d victim: Jammed=%v, want %v", slot, got, inWindow)
		}
		if inj.Jammed(slot, 1) {
			t.Errorf("slot %d: non-victim node 1 jammed", slot)
		}
	}
	// Empty victim list means everyone; Duty defaults to Period.
	all, err := (&Profile{Jammers: []Jammer{{From: 0, Until: 5}}}).Compile(3)
	if err != nil {
		t.Fatal(err)
	}
	for v := int32(0); v < 3; v++ {
		if !all.Jammed(0, v) || all.Jammed(5, v) {
			t.Fatalf("victimless jammer: wrong coverage at node %d", v)
		}
	}
}

func TestEventsCompiled(t *testing.T) {
	p := &Profile{Crashes: []Crash{
		{Node: 3, At: 50},
		{Node: 1, At: 10, Restart: 40},
	}}
	inj, err := p.Compile(5)
	if err != nil {
		t.Fatal(err)
	}
	want := []Event{
		{Slot: 10, Node: 1, Kind: EventCrash, Final: false},
		{Slot: 40, Node: 1, Kind: EventRestart},
		{Slot: 50, Node: 3, Kind: EventCrash, Final: true},
	}
	if !reflect.DeepEqual(inj.Events(), want) {
		t.Fatalf("events = %+v, want %+v", inj.Events(), want)
	}
}

func TestSkewOffsets(t *testing.T) {
	inj, err := (&Profile{Seed: 11, SkewProb: 0.5}).Compile(64)
	if err != nil {
		t.Fatal(err)
	}
	if !inj.HasSkew() {
		t.Fatal("HasSkew = false")
	}
	a, b := inj.SkewOffsets(64), inj.SkewOffsets(64)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("SkewOffsets not deterministic")
	}
	ones := 0
	for _, v := range a {
		if v == 1 {
			ones++
		}
	}
	if ones == 0 || ones == 64 {
		t.Fatalf("skew=0.5 gave %d/64 offset nodes", ones)
	}
	full, err := (&Profile{SkewProb: 1}).Compile(8)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range full.SkewOffsets(8) {
		if v != 1 {
			t.Fatalf("skew=1: node %d offset %d", i, v)
		}
	}
}

func TestParseProfile(t *testing.T) {
	p, err := ParseProfile("loss=0.05,crash=3@500,crash=7@200:900,jam=100:400@0+1+2~0.8,burst=0.2/64,skew=0.25,seed=42")
	if err != nil {
		t.Fatal(err)
	}
	want := &Profile{
		Seed: 42, Loss: 0.05, SkewProb: 0.25,
		Burst:   &Burst{PBad: 0.2, Window: 64},
		Crashes: []Crash{{Node: 3, At: 500}, {Node: 7, At: 200, Restart: 900}},
		Jammers: []Jammer{{Nodes: []int{0, 1, 2}, From: 100, Until: 400, Prob: 0.8}},
	}
	if !reflect.DeepEqual(p, want) {
		t.Fatalf("parsed %+v, want %+v", p, want)
	}
	// String round-trips to an equivalent profile.
	p2, err := ParseProfile(p.String())
	if err != nil {
		t.Fatalf("reparse %q: %v", p.String(), err)
	}
	if p2.String() != p.String() {
		t.Fatalf("round trip: %q != %q", p2.String(), p.String())
	}

	if p, err := ParseProfile("  "); err != nil || p.Active() {
		t.Fatalf("blank profile: (%+v, %v)", p, err)
	}

	bad := []string{
		"loss", "loss=", "loss=x", "loss=2", "frob=1", "crash=5",
		"crash=5@-1", "crash=5@10:3", "jam=9", "jam=5:2", "burst=0.5",
		"burst=0.5/0", "jam=0:9@x", "jam=0:9~7", "crash=1@2,crash=1@9",
	}
	for _, s := range bad {
		if _, err := ParseProfile(s); err == nil {
			t.Errorf("ParseProfile(%q): want error, got nil", s)
		}
	}
}

func TestInjectorPredicatesAllocFree(t *testing.T) {
	p, err := ParseProfile("loss=0.2,burst=0.3/32/0.9/0.01,jam=0:0:7:3@1~0.5,crash=2@100")
	if err != nil {
		t.Fatal(err)
	}
	inj, err := p.Compile(8)
	if err != nil {
		t.Fatal(err)
	}
	var sink bool
	allocs := testing.AllocsPerRun(200, func() {
		for s := int64(0); s < 64; s++ {
			sink = inj.Lost(s, 0, 1) || inj.Jammed(s, 1) || sink
		}
	})
	if allocs != 0 {
		t.Fatalf("Lost/Jammed allocated %v per run, want 0", allocs)
	}
	_ = sink
}

// TestPermute pins the relabeling covariance contract: node references
// (crash victims, jammer victim lists) map through forward, schedules
// and rates are untouched, the original profile is not mutated, and
// out-of-range references pass through unmapped.
func TestPermute(t *testing.T) {
	var nilP *Profile
	if nilP.Permute([]int32{0}) != nil {
		t.Fatal("nil profile must permute to nil")
	}

	p := &Profile{
		Loss: 0.25,
		Seed: 7,
		Crashes: []Crash{
			{Node: 0, At: 10, Restart: 20},
			{Node: 3, At: 5},
			{Node: 99, At: 1}, // out of range: passes through
		},
		Jammers: []Jammer{
			{Nodes: []int{1, 2, -4}, From: 0, Until: 50, Prob: 0.5},
			{From: 100, Period: 8, Duty: 2}, // all-nodes jammer: no list to map
		},
		Burst: &Burst{PBad: 0.1, Window: 16},
	}
	forward := []int32{3, 2, 1, 0} // reversal on 4 nodes
	q := p.Permute(forward)

	if q.Loss != p.Loss || q.Seed != p.Seed || q.Burst != p.Burst {
		t.Fatalf("rates/seed/burst must carry over: %+v", q)
	}
	wantCrashes := []Crash{
		{Node: 3, At: 10, Restart: 20},
		{Node: 0, At: 5},
		{Node: 99, At: 1},
	}
	if !reflect.DeepEqual(q.Crashes, wantCrashes) {
		t.Fatalf("crashes = %+v, want %+v", q.Crashes, wantCrashes)
	}
	wantNodes := []int{2, 1, -4}
	if !reflect.DeepEqual(q.Jammers[0].Nodes, wantNodes) {
		t.Fatalf("jammer victims = %v, want %v", q.Jammers[0].Nodes, wantNodes)
	}
	if q.Jammers[0].From != 0 || q.Jammers[0].Until != 50 || q.Jammers[0].Prob != 0.5 {
		t.Fatalf("jammer schedule must carry over: %+v", q.Jammers[0])
	}
	if len(q.Jammers[1].Nodes) != 0 || q.Jammers[1].Period != 8 {
		t.Fatalf("all-nodes jammer must carry over: %+v", q.Jammers[1])
	}

	// The original is untouched (Permute copies node-bearing slices).
	if p.Crashes[0].Node != 0 || p.Jammers[0].Nodes[0] != 1 {
		t.Fatalf("Permute mutated its receiver: %+v", p)
	}
}
