package experiment

import (
	"fmt"

	"radiocolor/internal/geom"
	"radiocolor/internal/graph"
	"radiocolor/internal/radio"
	"radiocolor/internal/stats"
	"radiocolor/internal/topology"
	"radiocolor/internal/verify"
)

// The experiments compute every measurement in per-cell/per-trial jobs
// (parMap/parTrials — fleet jobs under -parallel) and fold the ordered
// results into rows sequentially, so tables are byte-identical at any
// worker count.

// E1Kappa reproduces Fig. 1 / Sect. 2 quantitatively: measured κ₁ and κ₂
// across graph families, checking the theoretical UDG bounds κ₁ ≤ 5,
// κ₂ ≤ 18 and showing that obstacles raise the constants only modestly.
func E1Kappa(o Options) *stats.Table {
	o = o.normalized()
	t := stats.NewTable("E1: bounded independence (κ₁/κ₂) across graph families",
		"topology", "n", "Δ", "diam", "κ₁", "κ₂", "exact", "within UDG bound")
	n := o.scale(400, 60)
	deployments := []*topology.Deployment{
		topology.RandomUDG(topology.UDGConfig{N: n, Side: 8, Radius: 1, Seed: o.Seed}),
		topology.RandomUDG(topology.UDGConfig{N: n, Side: 5, Radius: 1, Seed: o.Seed + 1}),
		topology.BIGWithWalls(topology.UDGConfig{N: n, Side: 8, Radius: 1, Seed: o.Seed + 2}, n/8),
		topology.UnitBallGraph(topology.UDGConfig{N: n, Side: 8, Radius: 1, Seed: o.Seed + 3}, geom.Chebyshev{}),
		topology.UnitBallGraph(topology.UDGConfig{N: n, Side: 8, Radius: 1, Seed: o.Seed + 4},
			geom.HubMetric{Hub: geom.Point{X: 4, Y: 4}, Factor: 0.3}),
		topology.GridGraph(o.scale(18, 6), o.scale(18, 6), 1, 1.5),
		topology.Ring(n / 2),
		topology.Clique(o.scale(40, 10)),
	}
	type cell struct {
		k      graph.KappaResult
		within string
	}
	rows := parMap(o, "E1", len(deployments), func(i int) cell {
		d := deployments[i]
		k := d.G.Kappa(graph.KappaOptions{Budget: 200_000, MaxNeighborhood: 150})
		isUDG := d.Obstacles == nil && d.Points != nil && d.Name[:3] == "udg"
		within := "n/a"
		if isUDG {
			within = fmt.Sprintf("%v", k.K1 <= 5 && k.K2 <= 18)
		}
		return cell{k, within}
	})
	for i, d := range deployments {
		k := rows[i].k
		t.AddRow(d.Name, d.N(), d.G.MaxDegree(), d.G.Diameter(), k.K1, k.K2, k.Exact, rows[i].within)
	}
	return t
}

// E2Correctness reproduces Theorem 2 + completeness (Theorem 5): the
// fraction of correct, complete runs across topology families × wake-up
// patterns.
func E2Correctness(o Options) *stats.Table {
	o = o.normalized()
	cols := []string{"topology", "wakeup", "trials", "correct", "complete", "mean colors", "mean maxT"}
	if o.ChannelStats {
		cols = append(cols, "coll rate")
	}
	t := stats.NewTable("E2: correctness/completeness (Theorems 2 & 5) across topologies × wake-up patterns",
		cols...)
	n := o.scale(120, 40)
	makeDeps := func(seed int64) []*topology.Deployment {
		return []*topology.Deployment{
			topology.RandomUDG(topology.UDGConfig{N: n, Side: 6, Radius: 1.2, Seed: seed}),
			topology.BIGWithWalls(topology.UDGConfig{N: n, Side: 6, Radius: 1.2, Seed: seed + 1}, n/5),
			topology.CorridorUDG(n, 24, 2, 1.1, seed+2),
			topology.Clique(o.scale(16, 8)),
			topology.Star(o.scale(24, 10)),
			topology.Ring(n / 2),
		}
	}
	baseDeps := makeDeps(o.Seed)
	numPats := len(radio.WakePatterns)
	type trial struct {
		correct, complete bool
		colors, maxT      float64
		collRate          float64
	}
	grid := parTrials(o, "E2", len(baseDeps)*numPats, o.Trials, func(cell, tr int) trial {
		di, pi := cell/numPats, cell%numPats
		pat := radio.WakePatterns[pi]
		seed := trialSeed(o.Seed, di*10+pi, tr)
		d := makeDeps(seed)[di]
		par := MeasureParams(d)
		wake := pat.Make(d.N(), par.WaitSlots(), seed)
		run, err := RunCore(d, par, wake, seed, defaultBudget(par), core0)
		if err != nil {
			panic(err)
		}
		r := trial{correct: run.Correct(), complete: run.Radio.AllDone}
		if r.complete {
			r.maxT = float64(run.Radio.MaxLatency())
		}
		if r.correct {
			r.colors = float64(run.Report.NumColors)
		}
		if rx := run.Radio.Deliveries + run.Radio.Collisions; rx > 0 {
			r.collRate = float64(run.Radio.Collisions) / float64(rx)
		}
		return r
	})
	for di := range baseDeps {
		for pi, pat := range radio.WakePatterns {
			correct, complete := 0, 0
			var colors, maxT, collRates []float64
			for _, r := range grid[di*numPats+pi] {
				if r.complete {
					complete++
					maxT = append(maxT, r.maxT)
				}
				if r.correct {
					correct++
					colors = append(colors, r.colors)
				}
				collRates = append(collRates, r.collRate)
			}
			row := []any{baseDeps[di].Name, pat.Name, o.Trials,
				fmt.Sprintf("%d/%d", correct, o.Trials),
				fmt.Sprintf("%d/%d", complete, o.Trials),
				stats.Mean(colors), stats.Mean(maxT)}
			if o.ChannelStats {
				row = append(row, fmt.Sprintf("%.4f", stats.Mean(collRates)))
			}
			t.AddRow(row...)
		}
	}
	return t
}

// E3TimeVsDelta reproduces the Δ-dependence of Theorem 3 / Corollary 2:
// on unit disk graphs (κ₂ ∈ O(1)) the per-node decision time is
// O(Δ log n) — linear in Δ, unlike the comparator's cubic growth.
func E3TimeVsDelta(o Options) *stats.Table {
	o = o.normalized()
	t := stats.NewTable("E3: running time vs Δ at fixed n (Theorem 3 / Corollary 2; expect linear growth)",
		"target Δ", "measured Δ", "κ₂", "mean maxT (slots)", "maxT/(Δ·log n)")
	n := o.scale(220, 60)
	targets := []int{6, 10, 14, 18, 24, 30}
	type trial struct {
		delta, kappa2 int
		t             float64
		ok            bool
	}
	grid := parTrials(o, "E3", len(targets), o.Trials, func(ci, tr int) trial {
		seed := trialSeed(o.Seed, ci, tr)
		d := topology.UDGWithTargetDegree(n, targets[ci], seed)
		par := MeasureParams(d)
		run, err := RunCore(d, par, radio.WakeSynchronous(d.N()), seed, defaultBudget(par), core0)
		if err != nil {
			panic(err)
		}
		return trial{par.Delta, par.Kappa2, float64(run.Radio.MaxLatency()), run.Correct()}
	})
	var xs, ys []float64
	for ci, target := range targets {
		var ts []float64
		measuredDelta, kappa2 := 0, 0
		for _, r := range grid[ci] {
			measuredDelta, kappa2 = r.delta, r.kappa2
			if r.ok {
				ts = append(ts, r.t)
			}
		}
		mean := stats.Mean(ts)
		logn := logn(n)
		t.AddRow(target, measuredDelta, kappa2, mean, mean/(float64(measuredDelta)*logn))
		if mean > 0 {
			xs = append(xs, float64(measuredDelta))
			ys = append(ys, mean)
		}
	}
	if len(xs) >= 2 {
		exp, r2 := stats.PowerFit(xs, ys)
		t.AddRow("fit", "", "", fmt.Sprintf("T ∝ Δ^%.2f", exp), fmt.Sprintf("R²=%.3f", r2))
	}
	return t
}

// E4TimeVsN reproduces the log n-dependence of Theorem 3: at fixed
// target degree, decision time grows logarithmically in n.
func E4TimeVsN(o Options) *stats.Table {
	o = o.normalized()
	t := stats.NewTable("E4: running time vs n at fixed Δ (Theorem 3; expect T ∝ log n)",
		"n", "measured Δ", "mean maxT (slots)", "maxT/(Δ·log₂ n)")
	sizes := []int{64, 128, 256, 512}
	if o.SizeFactor >= 1 {
		sizes = append(sizes, 1024)
	}
	scaled := make([]int, len(sizes))
	for i, n := range sizes {
		scaled[i] = o.scale(n, 32)
	}
	type trial struct {
		delta   int
		t, norm float64
		ok      bool
	}
	grid := parTrials(o, "E4", len(scaled), o.Trials, func(ci, tr int) trial {
		seed := trialSeed(o.Seed, 100+ci, tr)
		d := topology.UDGWithTargetDegree(scaled[ci], 10, seed)
		par := MeasureParams(d)
		run, err := RunCore(d, par, radio.WakeSynchronous(d.N()), seed, defaultBudget(par), core0)
		if err != nil {
			panic(err)
		}
		return trial{par.Delta, float64(run.Radio.MaxLatency()),
			float64(run.Radio.MaxLatency()) / float64(par.Delta), run.Correct()}
	})
	var xs, ys []float64 // Δ-normalized series: the measured max degree
	// drifts upward with n (extreme-value effect of the random
	// deployment), so the fair log n check normalizes T by Δ first.
	for ci, n := range scaled {
		var ts, tsNorm []float64
		measuredDelta := 0
		for _, r := range grid[ci] {
			measuredDelta = r.delta
			if r.ok {
				ts = append(ts, r.t)
				tsNorm = append(tsNorm, r.norm)
			}
		}
		mean := stats.Mean(ts)
		t.AddRow(n, measuredDelta, mean, mean/(float64(measuredDelta)*logn(n)))
		if norm := stats.Mean(tsNorm); norm > 0 {
			xs = append(xs, float64(n))
			ys = append(ys, norm)
		}
	}
	if len(xs) >= 2 {
		f := stats.LogFit(xs, ys)
		pexp, _ := stats.PowerFit(xs, ys)
		t.AddRow("fit (T/Δ)", "", fmt.Sprintf("T/Δ = %.0f + %.0f·ln n (R²=%.3f)", f.Intercept, f.Slope, f.R2),
			fmt.Sprintf("T/Δ ∝ n^%.2f", pexp))
	}
	return t
}

// E5Colors reproduces the O(Δ) color bound of Theorem 5 / Corollary 2:
// the number (and maximum) of colors grows linearly with Δ, with the
// ratio colors/Δ bounded by a small constant.
func E5Colors(o Options) *stats.Table {
	o = o.normalized()
	t := stats.NewTable("E5: colors used vs Δ (Theorem 5 / Corollary 2; expect O(Δ))",
		"target Δ", "measured Δ", "mean #colors", "mean max color", "#colors/Δ", "max color bound")
	n := o.scale(220, 60)
	targets := []int{6, 10, 14, 18, 24, 30}
	type trial struct {
		delta, kappa2 int
		used, maxc    float64
		ok            bool
	}
	grid := parTrials(o, "E5", len(targets), o.Trials, func(ci, tr int) trial {
		seed := trialSeed(o.Seed, 200+ci, tr)
		d := topology.UDGWithTargetDegree(n, targets[ci], seed)
		par := MeasureParams(d)
		run, err := RunCore(d, par, radio.WakeSynchronous(d.N()), seed, defaultBudget(par), core0)
		if err != nil {
			panic(err)
		}
		r := trial{delta: par.Delta, kappa2: par.Kappa2, ok: run.Correct()}
		if r.ok {
			r.used = float64(run.Report.NumColors)
			r.maxc = float64(run.Report.MaxColor)
		}
		return r
	})
	var xs, ys []float64
	for ci, target := range targets {
		var used, maxc []float64
		measuredDelta, kappa2 := 0, 0
		for _, r := range grid[ci] {
			measuredDelta, kappa2 = r.delta, r.kappa2
			if r.ok {
				used = append(used, r.used)
				maxc = append(maxc, r.maxc)
			}
		}
		bound := (measuredDelta-1)*(kappa2+1) + kappa2
		t.AddRow(target, measuredDelta, stats.Mean(used), stats.Mean(maxc),
			stats.Mean(used)/float64(measuredDelta), bound)
		if m := stats.Mean(used); m > 0 {
			xs = append(xs, float64(measuredDelta))
			ys = append(ys, m)
		}
	}
	if len(xs) >= 2 {
		f := stats.LinearFit(xs, ys)
		t.AddRow("fit", "", fmt.Sprintf("#colors = %.1f + %.2f·Δ", f.Intercept, f.Slope),
			fmt.Sprintf("R²=%.3f", f.R2), "", "")
	}
	return t
}

// E6Locality reproduces Theorem 4: in a heterogeneous deployment (dense
// core, sparse fringe), the highest color in a node's neighborhood
// tracks the local density — fringe nodes keep low colors even though
// the core needs many.
func E6Locality(o Options) *stats.Table {
	o = o.normalized()
	t := stats.NewTable("E6: locality of colors (Theorem 4) on dense-core + sparse-fringe deployments",
		"region", "nodes", "mean θ (local density)", "mean φ (max nbr color)", "max φ/θ", "violations of (κ₂+1)θ")
	nCore := o.scale(110, 30)
	nFringe := o.scale(110, 30)
	// Per-trial measurements, indexed core=0 / fringe=1.
	type trial struct {
		ok                bool
		theta, phi, rat   [2][]float64
		viol, numInRegion [2]int
	}
	rows := parMap(o, "E6", o.Trials, func(tr int) trial {
		seed := trialSeed(o.Seed, 300, tr)
		d := topology.ClusteredUDG(nCore, nFringe, 18, 1.0, seed)
		par := MeasureParams(d)
		run, err := RunCore(d, par, radio.WakeSynchronous(d.N()), seed, defaultBudget(par), core0)
		if err != nil {
			panic(err)
		}
		var r trial
		if !run.Correct() {
			return r
		}
		r.ok = true
		viol := verify.CheckLocality(d.G, run.Colors, par.Kappa2)
		violSet := make(map[int32]bool, len(viol))
		for _, v := range viol {
			violSet[v.Node] = true
		}
		ratios := verify.PhiOverTheta(d.G, run.Colors)
		for v := 0; v < d.N(); v++ {
			region := 0 // core
			if v >= nCore {
				region = 1 // fringe
			}
			r.numInRegion[region]++
			theta := 0
			for _, u := range d.G.TwoHop(v) {
				if deg := d.G.Degree(int(u)); deg > theta {
					theta = deg
				}
			}
			phi := float64(theta) * ratios[v]
			r.theta[region] = append(r.theta[region], float64(theta))
			r.phi[region] = append(r.phi[region], phi)
			r.rat[region] = append(r.rat[region], ratios[v])
			if violSet[int32(v)] {
				r.viol[region]++
			}
		}
		return r
	})
	type acc struct {
		theta, phi, ratio []float64
		viol              int
		count             int
	}
	regions := map[string]*acc{"core": {}, "fringe": {}}
	for _, r := range rows {
		if !r.ok {
			continue
		}
		for ri, name := range []string{"core", "fringe"} {
			a := regions[name]
			a.count += r.numInRegion[ri]
			a.theta = append(a.theta, r.theta[ri]...)
			a.phi = append(a.phi, r.phi[ri]...)
			a.ratio = append(a.ratio, r.rat[ri]...)
			a.viol += r.viol[ri]
		}
	}
	for _, region := range []string{"core", "fringe"} {
		a := regions[region]
		maxRatio := 0.0
		for _, r := range a.ratio {
			if r > maxRatio {
				maxRatio = r
			}
		}
		t.AddRow(region, a.count, stats.Mean(a.theta), stats.Mean(a.phi), maxRatio, a.viol)
	}
	return t
}

// logn is the log₂ used in the tables.
func logn(n int) float64 {
	v := 1.0
	x := 2
	for x < n {
		x *= 2
		v++
	}
	return v
}
