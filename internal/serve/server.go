package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"radiocolor"
	"radiocolor/internal/fleet"
	"radiocolor/internal/graph"
	"radiocolor/internal/monitor"
	"radiocolor/internal/obs"
	"radiocolor/internal/radio"
)

// Config parameterizes a Server. The zero value is usable: a queue of
// 64, GOMAXPROCS workers, a 128-entry deployment cache.
type Config struct {
	// QueueCap bounds the admission queue; a full queue rejects
	// submissions with 429 + Retry-After. Defaults to 64.
	QueueCap int
	// Workers is the number of jobs executing concurrently. Defaults to
	// runtime.GOMAXPROCS(0).
	Workers int
	// CacheSize bounds the deployment LRU (entries). 0 defaults to 128;
	// negative disables caching.
	CacheSize int
	// MaxNodes rejects jobs larger than this with 413 (admission
	// control: a single huge job should not starve the pool unnoticed).
	// Defaults to 200000.
	MaxNodes int
	// MaxAttempts is the fleet retry bound per job. Defaults to 1 — the
	// simulation is deterministic, so failures are too.
	MaxAttempts int
	// RetryAfter is the hint sent with 429 responses. Defaults to 1s.
	RetryAfter time.Duration
	// JobTimeout bounds each job's wall-clock execution; a job that
	// exceeds it finishes in state "timed_out". 0 means unlimited. A
	// request's timeout_ms overrides it per job.
	JobTimeout time.Duration
	// StreamInterval is the progress sampling period of the stream
	// endpoints. Defaults to 250ms.
	StreamInterval time.Duration
	// MaxBodyBytes bounds the request body. Defaults to 32 MiB (a
	// million-edge adjacency fits comfortably).
	MaxBodyBytes int64
	// MaxRetained bounds the finished jobs kept for status queries;
	// older terminal jobs are pruned as new ones are admitted. Defaults
	// to 4096.
	MaxRetained int

	// run substitutes the job execution for tests.
	run func(ctx context.Context, j *job) (*radiocolor.Outcome, error)
	// now substitutes the clock for tests.
	now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.QueueCap <= 0 {
		c.QueueCap = 64
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.CacheSize == 0 {
		c.CacheSize = 128
	}
	if c.MaxNodes <= 0 {
		c.MaxNodes = 200_000
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 1
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.StreamInterval <= 0 {
		c.StreamInterval = 250 * time.Millisecond
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 32 << 20
	}
	if c.MaxRetained <= 0 {
		c.MaxRetained = 4096
	}
	if c.now == nil {
		c.now = time.Now
	}
	return c
}

// job is the server-side record of one submission.
type job struct {
	id       string
	opt      radiocolor.Options
	adj      [][]int
	points   [][2]float64
	radius   float64
	cacheKey string
	cacheHit bool
	// timeout is the job's wall-clock bound (0 = none); exceeding it
	// ends the job in StateTimedOut.
	timeout time.Duration
	// metrics is the per-job live registry the stream endpoints sample;
	// the run feeds it (and the server aggregate) through the observer
	// seam.
	metrics *obs.Metrics

	submitted time.Time
	// done is closed exactly once, on the transition into a terminal
	// state; streamers select on it.
	done chan struct{}

	mu       sync.Mutex
	state    JobState
	started  time.Time
	finished time.Time
	attempts int
	canceled bool // cancellation requested while running
	cancel   context.CancelFunc
	outcome  *radiocolor.Outcome
	errMsg   string
}

// status snapshots the job for the wire.
func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:        j.id,
		State:     j.state,
		Submitted: j.submitted,
		Attempts:  j.attempts,
		CacheHit:  j.cacheHit,
		Error:     j.errMsg,
		Outcome:   j.outcome,
	}
	if !j.started.IsZero() {
		t := j.started
		st.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.Finished = &t
	}
	return st
}

// Server is the coloring service: HTTP handlers in front of a bounded
// queue and a worker pool. Create with New, serve with any http.Server,
// stop with Shutdown.
type Server struct {
	cfg      Config
	mux      *http.ServeMux
	queue    *queue
	cache    *lru
	engine   *fleet.Engine
	progress *monitor.Progress
	obsReg   *obs.Metrics
	latency  *histogram
	start    time.Time

	baseCtx    context.Context
	baseCancel context.CancelFunc
	wg         sync.WaitGroup

	mu       sync.Mutex
	jobs     map[string]*job
	order    []*job // submission order, for retention pruning
	draining bool

	nextID    atomic.Int64
	submitted atomic.Int64
	accepted  atomic.Int64
	rejected  atomic.Int64
	completed atomic.Int64
	failed    atomic.Int64
	canceled  atomic.Int64
	timedOut  atomic.Int64
	inflight  atomic.Int64
}

// New builds a Server and starts its worker pool.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		mux:      http.NewServeMux(),
		queue:    newQueue(cfg.QueueCap),
		cache:    newLRU(cfg.CacheSize),
		progress: monitor.NewProgress(nil, "colord"),
		obsReg:   obs.NewMetrics(),
		latency:  newHistogram(defaultLatencyBounds),
		start:    cfg.now(),
		jobs:     make(map[string]*job),
	}
	s.progress.SetUnits("slots", radio.SimulatedSlots)
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	// Each worker runs its job through a single-job fleet batch: the
	// engine contributes panic recovery, the retry loop, wall-time
	// accounting, and the monitor.Progress wiring — the same execution
	// substrate the experiment suite uses.
	s.engine = fleet.New(fleet.Config{
		Workers:     1,
		MaxAttempts: cfg.MaxAttempts,
		Progress:    s.progress,
	})
	s.routes()
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

func (s *Server) now() time.Time { return s.cfg.now() }

func (s *Server) routes() {
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	s.mux.HandleFunc("GET /v1/jobs/{id}/stream", s.handleStream)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Shutdown drains the server: submissions are refused, queued jobs are
// canceled, and in-flight jobs get until ctx's deadline to finish
// before their contexts are canceled. It returns nil when everything
// drained in time and ctx.Err() when the deadline forced cancellation;
// in both cases the worker pool has fully exited on return.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.queue.close()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.baseCancel()
		return nil
	case <-ctx.Done():
		// Deadline: cancel every in-flight job's context; the
		// simulation polls cancellation every ~1024 slots, so the pool
		// exits promptly.
		s.baseCancel()
		<-done
		return ctx.Err()
	}
}

// worker pulls jobs off the queue until it closes and drains.
func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue.ch {
		s.execute(j)
	}
}

// execute runs one dequeued job through its lifecycle.
func (s *Server) execute(j *job) {
	// The draining flag is read before j.mu so the lock order is always
	// s.mu → j.mu (register nests that way); a job that slips past the
	// flag as shutdown begins simply becomes in-flight and gets the
	// drain deadline like any other.
	draining := s.isDraining()
	j.mu.Lock()
	if j.state.Terminal() {
		// Canceled while queued; nothing to run.
		j.mu.Unlock()
		return
	}
	if draining {
		// Shutdown policy: queued-but-unstarted jobs are canceled, only
		// in-flight ones get the drain deadline.
		j.state = StateCanceled
		j.finished = s.now()
		close(j.done)
		j.mu.Unlock()
		s.canceled.Add(1)
		return
	}
	ctx, cancel := context.WithCancel(s.baseCtx)
	if j.timeout > 0 {
		// The timeout wraps the cancelable context, so a DELETE still
		// surfaces as Canceled and only a genuine deadline as
		// DeadlineExceeded.
		var cancelT context.CancelFunc
		ctx, cancelT = context.WithTimeout(ctx, j.timeout)
		defer cancelT()
	}
	j.state = StateRunning
	j.started = s.now()
	j.cancel = cancel
	j.mu.Unlock()
	defer cancel()

	s.inflight.Add(1)
	results, _ := s.engine.Run([]fleet.Job{{
		ID: j.id,
		Run: func() (any, error) {
			out, err := s.runJob(ctx, j)
			if err != nil {
				return nil, err
			}
			return out, nil
		},
	}})
	s.inflight.Add(-1)
	res := results[0]
	s.latency.Observe(res.Duration)

	j.mu.Lock()
	j.finished = s.now()
	j.attempts = res.Attempts
	j.cancel = nil
	switch {
	case res.Err == nil:
		j.outcome = res.Value.(*radiocolor.Outcome)
		j.state = StateDone
		s.completed.Add(1)
	case !j.canceled && j.timeout > 0 && errors.Is(res.Err, context.DeadlineExceeded):
		j.state = StateTimedOut
		j.errMsg = fmt.Sprintf("job exceeded its %v wall-clock timeout", j.timeout)
		s.timedOut.Add(1)
	case j.canceled || errors.Is(res.Err, context.Canceled) || errors.Is(res.Err, context.DeadlineExceeded):
		j.state = StateCanceled
		j.errMsg = res.Err.Error()
		s.canceled.Add(1)
	default:
		j.state = StateFailed
		j.errMsg = res.Err.Error()
		s.failed.Add(1)
	}
	close(j.done)
	j.mu.Unlock()

	if j.state == StateDone && j.cacheKey != "" && j.outcome != nil {
		// Record the measured parameters so the next job on this
		// deployment skips the measurement pass. Identical by
		// construction: measurement is deterministic.
		s.cache.setMeasured(j.cacheKey, radiocolor.Measured{
			Delta:  j.outcome.Delta,
			Kappa1: j.outcome.Kappa1,
			Kappa2: j.outcome.Kappa2,
		})
	}
}

// runJob executes the job through the public context-aware entry
// points, feeding the per-job and server-aggregate obs registries
// through the Observer/PhaseObserver seams (which cannot affect the
// outcome). The node count is seeded into the asleep gauge before the
// run and the terminal occupancy is subtracted back out after, so the
// aggregate phase gauges always describe the currently running jobs.
func (s *Server) runJob(ctx context.Context, j *job) (*radiocolor.Outcome, error) {
	if s.cfg.run != nil {
		return s.cfg.run(ctx, j)
	}
	n := int64(len(j.adj) + len(j.points))
	j.metrics.AddPhaseGauge(obs.PhaseAsleep, n)
	s.obsReg.AddPhaseGauge(obs.PhaseAsleep, n)
	defer func() {
		snap := j.metrics.Snapshot()
		for p, v := range snap.PhaseNodes {
			s.obsReg.AddPhaseGauge(obs.Phase(p), -v)
		}
	}()
	opt := j.opt
	opt.Observer = obsFeed{a: j.metrics, b: s.obsReg}
	if j.points != nil {
		return radiocolor.ColorUnitDiskContext(ctx, j.points, j.radius, opt)
	}
	return radiocolor.ColorGraphContext(ctx, j.adj, opt)
}

// obsFeed fans simulation events into two metrics registries: the
// job's own (streamed) and the server aggregate (scraped). Both are
// atomic, so the feed is safe under Options.Workers > 1. It implements
// radiocolor.PhaseObserver, so the registries also carry live phase
// occupancy.
type obsFeed struct{ a, b *obs.Metrics }

func (f obsFeed) OnSlot(int64) { f.a.AddSlot(); f.b.AddSlot() }
func (f obsFeed) OnWake(int64, int) {
	f.a.AddWakeup()
	f.b.AddWakeup()
}
func (f obsFeed) OnTransmit(int64, int) {
	f.a.AddTransmission()
	f.b.AddTransmission()
}
func (f obsFeed) OnDeliver(int64, int, int) {
	f.a.AddDelivery()
	f.b.AddDelivery()
}
func (f obsFeed) OnCollision(int64, int, int) {
	f.a.AddCollision()
	f.b.AddCollision()
}
func (f obsFeed) OnDecide(int64, int) {
	f.a.AddDecision()
	f.b.AddDecision()
}
func (f obsFeed) OnPhase(_ int64, _ int, from, to string) {
	pf, err1 := obs.ParsePhase(from)
	pt, err2 := obs.ParsePhase(to)
	if err1 != nil || err2 != nil {
		return
	}
	f.a.PhaseChange(pf, pt)
	f.b.PhaseChange(pf, pt)
}

// register adds j to the index, pruning the oldest terminal jobs
// beyond the retention bound.
func (s *Server) register(j *job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.jobs[j.id] = j
	s.order = append(s.order, j)
	if len(s.order) <= s.cfg.MaxRetained {
		return
	}
	kept := s.order[:0]
	excess := len(s.order) - s.cfg.MaxRetained
	for _, old := range s.order {
		if excess > 0 && old.status().State.Terminal() {
			delete(s.jobs, old.id)
			excess--
			continue
		}
		kept = append(kept, old)
	}
	s.order = kept
}

func (s *Server) unregister(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j, ok := s.jobs[id]; ok {
		delete(s.jobs, id)
		for i, o := range s.order {
			if o == j {
				s.order = append(s.order[:i], s.order[i+1:]...)
				break
			}
		}
	}
}

func (s *Server) lookup(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// errorResponse is the JSON error body.
type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	s.submitted.Add(1)
	if s.isDraining() {
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "server is draining"})
		return
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	dec.DisallowUnknownFields()
	var req JobRequest
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad request body: " + err.Error()})
		return
	}
	opt, err := req.validate()
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	if n := req.nodes(); n > s.cfg.MaxNodes {
		writeJSON(w, http.StatusRequestEntityTooLarge,
			errorResponse{Error: fmt.Sprintf("serve: %d nodes exceeds the limit of %d", n, s.cfg.MaxNodes)})
		return
	}

	j := &job{
		opt:       opt,
		timeout:   s.cfg.JobTimeout,
		submitted: s.now(),
		state:     StateQueued,
		done:      make(chan struct{}),
		metrics:   obs.NewMetrics(),
	}
	if req.TimeoutMS > 0 {
		j.timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	switch {
	case req.Topology != nil:
		j.cacheKey = req.Topology.key()
		if e := s.cache.get(j.cacheKey); e != nil {
			j.adj = e.adj
			j.cacheHit = true
			if m := e.measured.Load(); m != nil {
				j.opt.Measured = m
			}
		} else {
			d, err := req.Topology.build()
			if err != nil {
				writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
				return
			}
			e := s.cache.add(j.cacheKey, adjacency(d.G))
			j.adj = e.adj
			if m := e.measured.Load(); m != nil {
				j.opt.Measured = m
			}
		}
	case req.Adjacency != nil:
		j.adj = req.Adjacency
	default:
		j.points = req.Points
		j.radius = req.Radius
	}
	j.id = fmt.Sprintf("j-%06d", s.nextID.Add(1))
	s.register(j)
	if err := s.queue.tryPush(j); err != nil {
		s.unregister(j.id)
		if errors.Is(err, errQueueClosed) {
			writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "server is draining"})
			return
		}
		s.rejected.Add(1)
		w.Header().Set("Retry-After", strconv.Itoa(int((s.cfg.RetryAfter + time.Second - 1) / time.Second)))
		writeJSON(w, http.StatusTooManyRequests,
			errorResponse{Error: fmt.Sprintf("queue full (%d/%d); retry later", s.queue.depth(), s.queue.capacity())})
		return
	}
	s.accepted.Add(1)
	w.Header().Set("Location", "/v1/jobs/"+j.id)
	writeJSON(w, http.StatusAccepted, j.status())
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	jobs := make([]*job, len(s.order))
	copy(jobs, s.order)
	s.mu.Unlock()
	statuses := make([]JobStatus, 0, len(jobs))
	for _, j := range jobs {
		st := j.status()
		st.Outcome = nil // list stays light; fetch the job for the result
		statuses = append(statuses, st)
	}
	writeJSON(w, http.StatusOK, statuses)
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "unknown job"})
		return
	}
	writeJSON(w, http.StatusOK, j.status())
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "unknown job"})
		return
	}
	j.mu.Lock()
	switch {
	case j.state.Terminal():
		// Nothing to do; report the final state.
	case j.state == StateQueued:
		j.state = StateCanceled
		j.finished = s.now()
		close(j.done)
		s.canceled.Add(1)
	default: // running
		j.canceled = true
		if j.cancel != nil {
			j.cancel()
		}
	}
	j.mu.Unlock()
	writeJSON(w, http.StatusOK, j.status())
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	snap := s.progress.Snapshot()
	h := Health{
		Status:        "ok",
		QueueDepth:    s.queue.depth(),
		QueueCapacity: s.queue.capacity(),
		Inflight:      int(s.inflight.Load()),
		JobsDone:      snap.Done,
		JobsFailed:    snap.Failed,
		UptimeSeconds: s.now().Sub(s.start).Seconds(),
		SlotsPerSec:   snap.UnitsPerSec,
	}
	code := http.StatusOK
	if s.isDraining() {
		h.Status = "draining"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, h)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.writeMetrics(w)
}

// adjacency flattens a built graph back to the public adjacency-list
// shape ColorGraphContext accepts.
func adjacency(g *graph.Graph) [][]int {
	adj := make([][]int, g.N())
	for v := range adj {
		row := g.Adj(v)
		out := make([]int, len(row))
		for i, u := range row {
			out[i] = int(u)
		}
		adj[v] = out
	}
	return adj
}
