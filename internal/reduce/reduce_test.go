package reduce

import (
	"testing"

	"radiocolor/internal/core"
	"radiocolor/internal/graph"
	"radiocolor/internal/radio"
	"radiocolor/internal/topology"
	"radiocolor/internal/verify"
)

// colorWith runs the main protocol and returns its coloring.
func colorWith(t *testing.T, d *topology.Deployment, seed int64) ([]int32, core.Params) {
	t.Helper()
	delta := d.G.MaxDegree()
	k := d.G.Kappa(graph.KappaOptions{Budget: 150_000, MaxNeighborhood: 140})
	par := core.Practical(d.N(), delta, k.K1, k.K2)
	nodes, protos := core.Nodes(d.N(), seed, par, core.Ablation{})
	res, err := radio.Run(radio.Config{
		G: d.G, Protocols: protos, Wake: radio.WakeSynchronous(d.N()),
		MaxSlots: 10_000_000, NEstimate: par.N,
	})
	if err != nil || !res.AllDone {
		t.Fatalf("base coloring failed: %v %v", err, res)
	}
	colors := make([]int32, d.N())
	for i, v := range nodes {
		colors[i] = v.Color()
	}
	if !verify.Check(d.G, colors).OK() {
		t.Fatal("base coloring improper")
	}
	return colors, par
}

// runReduction executes the compaction phase.
func runReduction(t *testing.T, d *topology.Deployment, colors []int32, par core.Params, seed int64) []int32 {
	t.Helper()
	rp := Params{N: par.N, Delta: par.Delta, Kappa2: par.Kappa2}
	nodes, protos := Nodes(colors, seed, rp)
	res, err := radio.Run(radio.Config{
		G: d.G, Protocols: protos, Wake: radio.WakeSynchronous(d.N()),
		MaxSlots: 200_000_000,
	})
	if err != nil || !res.AllDone {
		t.Fatalf("reduction did not finish: %v %v", err, res)
	}
	out := make([]int32, d.N())
	for i, v := range nodes {
		out[i] = v.Color()
	}
	return out
}

func TestReductionCompactsAndStaysProper(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		d := topology.RandomUDG(topology.UDGConfig{N: 90, Side: 5.5, Radius: 1.2, Seed: 4 + seed})
		colors, par := colorWith(t, d, 9+seed)
		before := verify.Check(d.G, colors)
		after := runReduction(t, d, colors, par, 21+seed)
		rep := verify.Check(d.G, after)
		if !rep.OK() {
			t.Fatalf("seed %d: reduction broke the coloring: %v", seed, rep)
		}
		if rep.MaxColor >= before.MaxColor {
			t.Errorf("seed %d: no compaction: max %d → %d", seed, before.MaxColor, rep.MaxColor)
		}
		// The palette should head toward the greedy/centralized scale:
		// at most Δ-ish colors (generous 2Δ check).
		if int(rep.MaxColor) > 2*par.Delta {
			t.Errorf("seed %d: max color %d still above 2Δ = %d after reduction",
				seed, rep.MaxColor, 2*par.Delta)
		}
	}
}

func TestReductionNoopOnCompactColoring(t *testing.T) {
	// An already-greedy coloring has little slack: reduction must keep
	// it proper and never raise the maximum.
	d := topology.RandomUDG(topology.UDGConfig{N: 60, Side: 5, Radius: 1.2, Seed: 5})
	colors := d.G.GreedyColoring()
	before := verify.Check(d.G, colors)
	rp := Params{N: d.N(), Delta: d.G.MaxDegree(), Kappa2: 9}
	nodes, protos := Nodes(colors, 3, rp)
	res, err := radio.Run(radio.Config{
		G: d.G, Protocols: protos, Wake: radio.WakeSynchronous(d.N()), MaxSlots: 200_000_000,
	})
	if err != nil || !res.AllDone {
		t.Fatal("reduction did not finish")
	}
	after := make([]int32, d.N())
	for i, v := range nodes {
		after[i] = v.Color()
	}
	rep := verify.Check(d.G, after)
	if !rep.OK() {
		t.Fatal("reduction broke a greedy coloring")
	}
	if rep.MaxColor > before.MaxColor {
		t.Errorf("max color rose %d → %d on a compact coloring", before.MaxColor, rep.MaxColor)
	}
}

func TestReductionDeterministic(t *testing.T) {
	d := topology.RandomUDG(topology.UDGConfig{N: 50, Side: 4.5, Radius: 1.2, Seed: 6})
	colors, par := colorWith(t, d, 11)
	a := runReduction(t, d, colors, par, 31)
	b := runReduction(t, d, colors, par, 31)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("node %d differs across identical runs", i)
		}
	}
}

func TestNodeUnit(t *testing.T) {
	// ParticipateProb 1 forces participation; Epochs 4 → warm-up epoch
	// 0, improvement epochs 1–2, repair-only epoch 3.
	par := Params{N: 64, Delta: 4, Kappa2: 4, EpochSlots: 10, Epochs: 4, ParticipateProb: 1}
	v := New(0, radio.NodeRand(1, 0), par, 9)
	if v.Color() != 9 || v.Moves() != 0 || v.Repairs() != 0 {
		t.Fatal("initial state wrong")
	}
	v.Start(0)
	v.Recv(0, &Announce{From: 1, Color: 0, Target: 0})
	v.Recv(0, &Announce{From: 2, Color: 1, Target: 1})
	if got := v.target(); got != 2 {
		t.Fatalf("target = %d, want 2", got)
	}
	// Deference rules: higher color blocks; equal color + higher id
	// blocks; lower color (even same target) does not.
	v.Recv(1, &Announce{From: 3, Color: 12, Target: 5})
	if !v.deferred(2) {
		t.Fatal("not deferred to higher-color intent")
	}
	v.intents = v.intents[:0]
	v.Recv(2, &Announce{From: 7, Color: 9, Target: 4})
	if !v.deferred(2) {
		t.Fatal("not deferred to equal-color higher-id intent")
	}
	v.intents = v.intents[:0]
	v.Recv(3, &Announce{From: 4, Color: 3, Target: 2})
	if v.deferred(2) {
		t.Fatal("deferred to lower-priority intent")
	}

	// Fresh run: drive through the schedule feeding neighbor colors;
	// warm-up epoch 0 must not move, epoch 1's boundary compacts to 2.
	v = New(0, radio.NodeRand(1, 0), par, 9)
	v.Start(0)
	for s := int64(0); s < int64(par.Epochs)*par.EpochSlots+5; s++ {
		if v.Send(s) == nil && s%par.EpochSlots < par.EpochSlots-1 {
			v.Recv(s, &Announce{From: 1, Color: 0, Target: 0})
			v.Recv(s, &Announce{From: 2, Color: 1, Target: 1})
		}
		if s/par.EpochSlots < 1 && v.Moves() != 0 {
			t.Fatalf("moved during warm-up at slot %d", s)
		}
	}
	if !v.Done() {
		t.Fatal("node not done after schedule")
	}
	if v.Color() != 2 || v.Moves() != 1 {
		t.Errorf("color = %d moves = %d, want 2/1", v.Color(), v.Moves())
	}
	if v.Send(1000) != nil {
		t.Error("done node transmitted")
	}
}

func TestNodeRepair(t *testing.T) {
	par := Params{N: 64, Delta: 4, Kappa2: 4, EpochSlots: 10, Epochs: 4, ParticipateProb: 1}
	v := New(0, radio.NodeRand(1, 0), par, 5)
	v.Start(0)
	// Advance past the warm-up so repairs are allowed (epoch ≥ 1).
	for s := int64(0); s < par.EpochSlots; s++ {
		v.Send(s)
	}
	// A higher-id neighbor announces OUR color: we must repair.
	v.Recv(10, &Announce{From: 9, Color: 5, Target: 5})
	if !v.mustRepair {
		t.Fatal("conflict not detected")
	}
	// A lower-id conflicter would not trigger repair on our side.
	w := New(9, radio.NodeRand(1, 9), par, 5)
	w.Start(0)
	w.Recv(10, &Announce{From: 0, Color: 5, Target: 5})
	if w.mustRepair {
		t.Fatal("higher id must not repair")
	}
	// Feed fresh colors 0..4 and drive to the epoch boundary: the
	// repair picks the smallest free color 6 (0–4 used, 5 is ours but
	// conflicted... smallest free among heard = 6 after hearing 0–5).
	for c := int32(0); c <= 5; c++ {
		v.Recv(11, &Announce{From: radio.NodeID(20 + c), Color: c, Target: c})
	}
	for s := par.EpochSlots; s < 2*par.EpochSlots; s++ {
		v.Send(s)
	}
	if v.Repairs() != 1 {
		t.Fatalf("repairs = %d, want 1", v.Repairs())
	}
	if v.Color() != 6 {
		t.Errorf("repaired color = %d, want 6", v.Color())
	}
	if v.mustRepair {
		t.Error("repair flag not cleared")
	}
}

func TestNewPanicsOnUncolored(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(0, radio.NodeRand(1, 0), Params{}, -1)
}

func TestParamsSchedule(t *testing.T) {
	p := (Params{N: 256, Delta: 10, Kappa2: 8}).normalized()
	if p.EpochSlots != 16*10*9 {
		t.Errorf("EpochSlots = %d", p.EpochSlots)
	}
	if p.Epochs != 32 {
		t.Errorf("Epochs = %d", p.Epochs)
	}
	if p.warmupEpochs() != 8 || p.repairOnlyFrom() != 24 {
		t.Errorf("schedule = %d/%d", p.warmupEpochs(), p.repairOnlyFrom())
	}
	tiny := (Params{Epochs: 2}).normalized()
	if tiny.warmupEpochs() < 1 || tiny.repairOnlyFrom() <= tiny.warmupEpochs() {
		t.Errorf("tiny schedule inconsistent: %d/%d", tiny.warmupEpochs(), tiny.repairOnlyFrom())
	}
}

func TestAnnounceBits(t *testing.T) {
	a := &Announce{From: 1, Color: 2, Target: 3}
	if a.Sender() != 1 {
		t.Error("sender wrong")
	}
	if b := a.Bits(500); b <= 0 || b > 100 {
		t.Errorf("bits = %d", b)
	}
	if a.Bits(0) <= 0 {
		t.Error("Bits(0) non-positive")
	}
}
