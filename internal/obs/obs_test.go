package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestMetricsCountersAndRates(t *testing.T) {
	m := NewMetrics()
	m.SetPhaseGauge(PhaseAsleep, 3)
	for i := 0; i < 5; i++ {
		m.AddTransmission()
	}
	m.AddDelivery()
	m.AddDelivery()
	m.AddCollision()
	m.AddCapture()
	m.AddDrop()
	m.AddDecision()
	m.AddWakeup()
	m.AddSlot()
	m.PhaseChange(PhaseAsleep, PhaseWaiting)

	s := m.Snapshot()
	if s.Transmissions != 5 || s.Deliveries != 2 || s.Collisions != 1 {
		t.Fatalf("counters wrong: %+v", s)
	}
	if s.PhaseNodes[PhaseAsleep] != 2 || s.PhaseNodes[PhaseWaiting] != 1 {
		t.Errorf("phase gauges wrong: %v", s.PhaseNodes)
	}
	if got := s.CollisionRate(); got != 1.0/3.0 {
		t.Errorf("collision rate = %v, want 1/3", got)
	}
	if s.Start.IsZero() {
		t.Error("rate origin not stamped by AddSlot")
	}
	if !strings.Contains(s.String(), "transmissions=5") {
		t.Errorf("String() missing counter: %s", s)
	}

	m.AddSlot()
	m.AddDelivery()
	d := m.Snapshot().Sub(s)
	if d.Slots != 1 || d.Deliveries != 1 || d.Transmissions != 0 {
		t.Errorf("delta wrong: %+v", d)
	}
}

func TestMetricsSINRCounters(t *testing.T) {
	// The SINR medium's loss vocabulary: bulk adders, snapshot deltas,
	// and the Export names the Prometheus exposition derives from.
	m := NewMetrics()
	m.AddCollisions(4)
	m.AddDrowned(3)
	m.AddBelowNoise(2)
	s := m.Snapshot()
	if s.Collisions != 4 || s.Drowned != 3 || s.BelowNoise != 2 {
		t.Fatalf("bulk counters wrong: %+v", s)
	}
	m.AddDrowned(1)
	if d := m.Snapshot().Sub(s); d.Drowned != 1 || d.BelowNoise != 0 {
		t.Errorf("delta wrong: %+v", d)
	}
	mp := m.Snapshot().Map()
	if mp["drowned"] != 4 || mp["below_noise"] != 2 {
		t.Errorf("export vocabulary missing sinr counters: %v", mp)
	}
	counter := map[string]bool{}
	m.Snapshot().Export(func(name string, _ int64, c bool) { counter[name] = c })
	if !counter["drowned"] || !counter["below_noise"] {
		t.Error("sinr losses must export as monotone counters")
	}
}

func TestMetricsConcurrent(t *testing.T) {
	m := NewMetrics()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				m.AddTransmission()
				m.PhaseChange(PhaseWaiting, PhaseActive)
				m.PhaseChange(PhaseActive, PhaseWaiting)
			}
		}()
	}
	wg.Wait()
	s := m.Snapshot()
	if s.Transmissions != 8000 {
		t.Errorf("lost transmissions: %d", s.Transmissions)
	}
	if s.PhaseNodes[PhaseActive] != 0 {
		t.Errorf("phase gauge drifted: %d", s.PhaseNodes[PhaseActive])
	}
}

func TestEventJSONLRoundTrip(t *testing.T) {
	events := []Event{
		{Slot: 0, Kind: KindWake, Node: 3, From: -1},
		{Slot: 1, Kind: KindPhase, Node: 3, From: -1, Phase: PhaseWaiting, Class: 0},
		{Slot: 7, Kind: KindTransmit, Node: 1, From: -1},
		{Slot: 7, Kind: KindDeliver, Node: 2, From: 1},
		{Slot: 8, Kind: KindCollision, Node: 2, From: -1, Count: 3},
		{Slot: 9, Kind: KindPhase, Node: 1, From: -1, Phase: PhaseColored, Class: 4},
		{Slot: 12, Kind: KindDecide, Node: 1, From: -1},
	}
	var buf bytes.Buffer
	for _, e := range events {
		buf.Write(e.MarshalJSONL())
		buf.WriteByte('\n')
	}
	var got []Event
	if err := ReadEvents(&buf, func(e Event) error { got = append(got, e); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("decoded %d of %d events", len(got), len(events))
	}
	for i := range events {
		if got[i] != events[i] {
			t.Errorf("event %d: got %+v want %+v", i, got[i], events[i])
		}
	}
}

func TestReadEventsRejectsGarbage(t *testing.T) {
	if err := ReadEvents(strings.NewReader("{\"slot\":1,\"kind\":\"nope\",\"node\":0}\n"),
		func(Event) error { return nil }); err == nil {
		t.Error("unknown kind accepted")
	}
	if err := ReadEvents(strings.NewReader("not json\n"),
		func(Event) error { return nil }); err == nil {
		t.Error("non-JSON line accepted")
	}
}

func TestTracerRingAndSink(t *testing.T) {
	var sink bytes.Buffer
	tr := NewTracer(4, &sink)
	for i := 0; i < 10; i++ {
		tr.Record(Event{Slot: int64(i), Kind: KindTransmit, Node: int32(i), From: -1})
	}
	if tr.Total() != 10 {
		t.Errorf("total = %d", tr.Total())
	}
	events := tr.Events()
	if len(events) != 4 {
		t.Fatalf("ring retained %d", len(events))
	}
	// The ring keeps the tail in chronological order.
	for i, e := range events {
		if e.Slot != int64(6+i) {
			t.Errorf("ring[%d].Slot = %d, want %d", i, e.Slot, 6+i)
		}
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	// The sink holds all 10, not just the ring's 4.
	if n := strings.Count(sink.String(), "\n"); n != 10 {
		t.Errorf("sink has %d lines", n)
	}
}

func TestTracerKindFilter(t *testing.T) {
	tr := NewTracer(16, nil, KindCollision)
	tr.Record(Event{Slot: 1, Kind: KindTransmit, Node: 0, From: -1})
	tr.Record(Event{Slot: 1, Kind: KindCollision, Node: 1, From: -1, Count: 2})
	if tr.Total() != 1 || tr.Events()[0].Kind != KindCollision {
		t.Errorf("filter failed: total=%d", tr.Total())
	}
}

func TestKindAndPhaseNames(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		back, err := ParseKind(k.String())
		if err != nil || back != k {
			t.Errorf("kind %d: %q round-trip failed", k, k.String())
		}
	}
	for p := Phase(0); p < NumPhases; p++ {
		back, err := ParsePhase(p.String())
		if err != nil || back != p {
			t.Errorf("phase %d: %q round-trip failed", p, p.String())
		}
	}
	if _, err := ParseKind("bogus"); err == nil {
		t.Error("bogus kind parsed")
	}
}

// feed drives the same synthetic run into any combination of collector
// pieces: 2 nodes wake, exchange messages, collide once, and decide.
func feed(c *Collector) {
	c.OnPhase(0, 0, PhaseAsleep, PhaseWaiting, 0)
	c.OnPhase(0, 1, PhaseAsleep, PhaseWaiting, 0)
	if c.Timeline != nil {
		c.Timeline.OnSlot(0)
	}
	c.OnPhase(1, 0, PhaseWaiting, PhaseActive, 0)
	if c.Tracer != nil {
		c.Tracer.Record(Event{Slot: 1, Kind: KindTransmit, Node: 0, From: -1})
		c.Tracer.Record(Event{Slot: 1, Kind: KindDeliver, Node: 1, From: 0})
	}
	if c.Timeline != nil {
		c.Timeline.OnTransmit(1, 0)
		c.Timeline.OnDeliver(1, 1)
		c.Timeline.OnSlot(1)
	}
	if c.Tracer != nil {
		c.Tracer.Record(Event{Slot: 2, Kind: KindCollision, Node: 1, From: -1, Count: 2})
	}
	if c.Timeline != nil {
		c.Timeline.OnCollision(2, 1)
		c.Timeline.OnSlot(2)
	}
	c.OnPhase(3, 0, PhaseActive, PhaseColored, 2)
	if c.Tracer != nil {
		c.Tracer.Record(Event{Slot: 3, Kind: KindDecide, Node: 0, From: -1})
	}
	if c.Timeline != nil {
		c.Timeline.OnDecide(3, 0)
		c.Timeline.OnSlot(3)
	}
}

func TestTimelineAttribution(t *testing.T) {
	tl := NewTimeline(2, 2)
	c := &Collector{Timeline: tl}
	feed(c)

	phases := tl.Phases()
	if phases[PhaseActive].Transmissions != 1 {
		t.Errorf("active tx = %d", phases[PhaseActive].Transmissions)
	}
	if phases[PhaseWaiting].Deliveries != 1 || phases[PhaseWaiting].Collisions != 1 {
		t.Errorf("waiting rx/coll = %d/%d",
			phases[PhaseWaiting].Deliveries, phases[PhaseWaiting].Collisions)
	}
	if phases[PhaseWaiting].Entries != 2 || phases[PhaseActive].Entries != 1 || phases[PhaseColored].Entries != 1 {
		t.Errorf("entries wrong: %+v", phases)
	}
	// Occupancy integral: node 1 waits slots 0–3 (4), node 0 waits slot
	// 0, is active slots 1–2, colored slot 3.
	if phases[PhaseWaiting].NodeSlots != 5 || phases[PhaseActive].NodeSlots != 2 {
		t.Errorf("node-slots: waiting=%d active=%d",
			phases[PhaseWaiting].NodeSlots, phases[PhaseActive].NodeSlots)
	}

	buckets := tl.Buckets()
	if len(buckets) != 2 {
		t.Fatalf("%d buckets for 4 slots at width 2", len(buckets))
	}
	if buckets[0].Transmissions != 1 || buckets[0].Deliveries != 1 || buckets[0].Slots != 2 {
		t.Errorf("bucket 0 wrong: %+v", buckets[0])
	}
	if buckets[1].Collisions != 1 || buckets[1].Decisions != 1 {
		t.Errorf("bucket 1 wrong: %+v", buckets[1])
	}
	if buckets[1].PhaseNodes[PhaseColored] != 1 || buckets[1].PhaseNodes[PhaseWaiting] != 1 {
		t.Errorf("bucket 1 occupancy wrong: %v", buckets[1].PhaseNodes)
	}
	if tl.Slots() != 4 {
		t.Errorf("slots = %d", tl.Slots())
	}
}

// TestSummarizeMatchesTimeline is the core contract of the subsystem:
// replaying a full JSONL trace offline yields the same per-phase
// delivery/collision/transmission counts the Timeline computed online.
func TestSummarizeMatchesTimeline(t *testing.T) {
	var sink bytes.Buffer
	c := &Collector{Tracer: NewTracer(0, &sink), Timeline: NewTimeline(2, 0)}
	feed(c)
	if err := c.Tracer.Flush(); err != nil {
		t.Fatal(err)
	}
	sum, err := Summarize(&sink)
	if err != nil {
		t.Fatal(err)
	}
	phases := c.Timeline.Phases()
	for p := 0; p < NumPhases; p++ {
		if sum.Phases[p].Transmissions != phases[p].Transmissions ||
			sum.Phases[p].Deliveries != phases[p].Deliveries ||
			sum.Phases[p].Collisions != phases[p].Collisions ||
			sum.Phases[p].Entries != phases[p].Entries {
			t.Errorf("phase %v: trace %+v vs timeline %+v", Phase(p), sum.Phases[p], phases[p])
		}
	}
	if sum.Decisions != 1 || sum.Nodes != 2 {
		t.Errorf("summary decisions=%d nodes=%d", sum.Decisions, sum.Nodes)
	}
	var out bytes.Buffer
	if err := sum.Render(&out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"events", "collision rate", "waiting", "active"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("render missing %q:\n%s", want, out.String())
		}
	}
}
