// Multiple communication channels as a medium. Sect. 2 of the paper:
// "in contrast to previous work on the unstructured radio network model
// [13, 14], we do not make the simplifying assumption of having several
// independent communication channels. In our model, there is only one
// communication channel."
//
// This medium restores the multi-channel assumption so the difference
// can be measured: the spectrum is divided into K independent channels
// and every node hops uniformly at random between them each slot (a
// standard oblivious strategy that needs no coordination — exactly what
// an uninitialized network can afford). A transmission is received by a
// listening neighbor iff both happen to sit on the same channel and no
// other audible transmission occupies it. Protocols run unchanged; the
// hopping sequence is part of the environment, derived deterministically
// from (HopSeed, node, slot).
//
// Experiment E21 compares k ∈ {1, 2, 4, 8}: more channels thin the
// contention (collisions drop roughly k²-fold) but also thin the
// useful receptions (sender and receiver must coincide, probability
// 1/k), so the protocol — whose pace is set by counters, not by
// individual deliveries — slows roughly linearly in k. The paper's
// single-channel choice is thus not just less restrictive but also the
// fastest operating point for this algorithm.

package medium

import "fmt"

// MultiChannel divides the spectrum into K channels with per-slot
// uniform random hopping. K == 1 degenerates to GraphThreshold.
type MultiChannel struct {
	// K is the channel count (≥ 1).
	K int
	// HopSeed drives the hopping schedule; 0 falls back to the
	// environment's run seed.
	HopSeed int64
}

// Name implements Medium.
func (MultiChannel) Name() string { return "multichannel" }

// Bind implements Medium.
func (m MultiChannel) Bind(env Env) (Instance, error) {
	if m.K < 1 {
		return nil, fmt.Errorf("medium: %d channels", m.K)
	}
	if len(env.Offsets) != env.N+1 {
		return nil, fmt.Errorf("medium: multichannel needs a CSR adjacency (%d offsets for %d nodes)", len(env.Offsets), env.N)
	}
	seed := m.HopSeed
	if seed == 0 {
		seed = env.Seed
	}
	return &multiChannelInstance{
		k:       m.K,
		seed:    seed,
		offsets: env.Offsets,
		edges:   env.Edges,
		chanOf:  make([]int32, env.N),
		stamp:   make([]int64, env.N),
		count:   make([]int32, env.N),
		from:    make([]int32, env.N),
	}, nil
}

type multiChannelInstance struct {
	k       int
	seed    int64
	offsets []int32
	edges   []int32
	// chanOf caches a node's channel for the slot recorded in stamp
	// (slot+1, so the zero value never matches). Only nodes actually
	// involved in a slot — transmitters and their neighbors — pay the
	// hash, instead of the all-n sweep of the old bespoke engine.
	chanOf  []int32
	stamp   []int64
	count   []int32
	from    []int32
	touched []int32
}

// Name implements Instance.
func (m *multiChannelInstance) Name() string { return "multichannel" }

// N implements Instance.
func (m *multiChannelInstance) N() int { return len(m.chanOf) }

// splitmix64 advances a SplitMix64 state (same mixer as the engine's
// stateless coins).
func splitmix64(z uint64) uint64 {
	z += 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// channel returns node i's channel in slot t: a pure function of
// (seed, slot, node), so the schedule is reproducible and independent
// of execution order. The formula is kept verbatim from the retired
// bespoke multichannel engine; the E21 pinned goldens depend on it.
func (m *multiChannelInstance) channel(t int64, i int32) int32 {
	if m.stamp[i] == t+1 {
		return m.chanOf[i]
	}
	h := splitmix64(splitmix64(uint64(m.seed)^uint64(t)) ^ (uint64(i) * 0x9E3779B97F4A7C15))
	c := int32(h % uint64(m.k))
	m.chanOf[i] = c
	m.stamp[i] = t + 1
	return c
}

// Resolve implements Instance: the graph-threshold rule applied per
// channel — a listener decodes iff exactly one neighbor transmits on
// the listener's current channel.
func (m *multiChannelInstance) Resolve(slot int64, tx []int32, listening func(int32) bool, dst []Reception) ([]Reception, Stats) {
	var st Stats
	touched := m.touched[:0]
	for _, v := range tx {
		cv := m.channel(slot, v)
		for _, u := range m.edges[m.offsets[v]:m.offsets[v+1]] {
			if m.count[u] == 0 {
				if !listening(u) || m.channel(slot, u) != cv {
					continue
				}
				m.from[u] = v
				touched = append(touched, u)
			} else if m.channel(slot, u) != cv {
				continue
			}
			m.count[u]++
		}
	}
	for _, u := range touched {
		if m.count[u] == 1 {
			dst = append(dst, Reception{To: u, From: m.from[u]})
		} else {
			st.Collisions++
		}
		m.count[u] = 0
	}
	m.touched = touched
	return dst, st
}
