package graph

import (
	"math/rand"
	"reflect"
	"testing"
)

// rebuild materializes the Dyn's current edge set as a static Graph,
// the oracle the incremental path is checked against.
func rebuildFromDyn(d *Dyn) *Graph {
	b := NewBuilder(d.N())
	for v := 0; v < d.N(); v++ {
		for _, u := range d.Row(int32(v)) {
			b.AddEdge(v, int(u))
		}
	}
	return b.Build()
}

func sameEdges(t *testing.T, d *Dyn, g *Graph) {
	t.Helper()
	for v := 0; v < d.N(); v++ {
		want := g.Adj(v)
		got := d.Row(int32(v))
		if len(want) == 0 && len(got) == 0 {
			continue
		}
		if !reflect.DeepEqual(append([]int32(nil), got...), append([]int32(nil), want...)) {
			t.Fatalf("row %d: dyn %v, want %v", v, got, want)
		}
	}
}

func TestDynMatchesRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 60
	b := NewBuilder(n)
	for i := 0; i < 150; i++ {
		b.AddEdge(rng.Intn(n), rng.Intn(n))
	}
	g := b.Build()
	d := NewDyn(g)
	sameEdges(t, d, g)

	// Random add/del batches, checked against a full rebuild each time.
	for step := 0; step < 40; step++ {
		var delta Delta
		for i := 0; i < 10; i++ {
			u, v := int32(rng.Intn(n)), int32(rng.Intn(n))
			if u == v {
				continue
			}
			if rng.Intn(2) == 0 {
				delta.Adds = append(delta.Adds, [2]int32{u, v})
			} else {
				delta.Dels = append(delta.Dels, [2]int32{u, v})
			}
		}
		_, touched := d.Apply(delta, nil)
		for i := 1; i < len(touched); i++ {
			if touched[i] <= touched[i-1] {
				t.Fatalf("touched not sorted-unique: %v", touched)
			}
		}
		sameEdges(t, d, rebuildFromDyn(d))
		// Rows stay sorted and self-loop-free.
		for v := 0; v < n; v++ {
			row := d.Row(int32(v))
			for i, u := range row {
				if u == int32(v) {
					t.Fatalf("self-loop in row %d", v)
				}
				if i > 0 && row[i-1] >= u {
					t.Fatalf("row %d not strictly ascending: %v", v, row)
				}
			}
		}
	}
}

func TestDynInverseRestores(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const n = 40
	b := NewBuilder(n)
	for i := 0; i < 80; i++ {
		b.AddEdge(rng.Intn(n), rng.Intn(n))
	}
	g := b.Build()
	d := NewDyn(g)

	before := make([][]int32, n)
	for v := 0; v < n; v++ {
		before[v] = append([]int32(nil), d.Row(int32(v))...)
	}
	delta := Delta{
		Adds: [][2]int32{{0, 1}, {2, 3}, {0, 1}, {5, 5}},
		Dels: [][2]int32{{1, 2}, {38, 39}},
	}
	inv, _ := d.Apply(delta, nil)
	_, _ = d.Apply(inv, nil)
	for v := 0; v < n; v++ {
		got := append([]int32(nil), d.Row(int32(v))...)
		if !reflect.DeepEqual(got, before[v]) {
			t.Fatalf("row %d after apply+inverse: %v, want %v", v, got, before[v])
		}
	}
}

func TestDynNoOpsExcludedFromInverse(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	d := NewDyn(b.Build())
	inv, touched := d.Apply(Delta{
		Adds: [][2]int32{{0, 1}}, // already present
		Dels: [][2]int32{{2, 3}}, // already absent
	}, nil)
	if !inv.Empty() || len(touched) != 0 {
		t.Fatalf("no-op batch produced inverse %+v touched %v", inv, touched)
	}
}

func TestDynRelocationGrowsRow(t *testing.T) {
	// Start from an empty graph and grow node 0's row far past the
	// initial slack; relocation must keep every row intact.
	d := NewDyn(NewBuilder(64).Build())
	var delta Delta
	for v := int32(1); v < 64; v++ {
		delta.Adds = append(delta.Adds, [2]int32{0, v})
	}
	_, _ = d.Apply(delta, nil)
	if d.Degree(0) != 63 {
		t.Fatalf("degree 63 expected, got %d", d.Degree(0))
	}
	row := d.Row(0)
	for i, u := range row {
		if u != int32(i+1) {
			t.Fatalf("row[%d] = %d, want %d", i, u, i+1)
		}
	}
	for v := int32(1); v < 64; v++ {
		if !d.Has(v, 0) || d.Degree(v) != 1 {
			t.Fatalf("node %d lost its back-edge", v)
		}
	}
}

func TestDynHeadersStableAcrossApply(t *testing.T) {
	// The off/end headers must be mutated in place (engine aliases them).
	b := NewBuilder(8)
	b.AddEdge(0, 1)
	d := NewDyn(b.Build())
	off, end := d.RowBounds()
	var delta Delta
	for v := int32(1); v < 8; v++ {
		delta.Adds = append(delta.Adds, [2]int32{0, v})
	}
	_, _ = d.Apply(delta, nil)
	off2, end2 := d.RowBounds()
	if &off[0] != &off2[0] || &end[0] != &end2[0] {
		t.Fatal("RowBounds headers were reallocated by Apply")
	}
	if int(end[0]-off[0]) != 7 {
		t.Fatalf("aliased header does not reflect the new degree: %d", end[0]-off[0])
	}
}
