package churn

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseSchedule parses the compact textual churn syntax shared by
// cmd/colorsim -churn and the serve job API's "churn" field:
//
//	schedule := term (',' term)*
//	term     := "seed=" int
//	          | "join=" node "@" slot
//	          | "leave=" node "@" slot
//	          | "move=" node "@" slot ":" x ":" y
//	          | "every=" int
//	          | "repair=" ("retract" | "none")
//
// A node whose first event is a join is absent from slot 0; joins and
// leaves per node must alternate. "move" appends a waypoint: the node
// travels linearly to (x, y), arriving at the given slot; multiple
// moves for one node chain in slot order. Examples:
//
//	leave=3@500
//	join=12@200,leave=12@900,repair=retract
//	move=7@1000:2.5:3.5,move=7@2000:0:0,every=32
//
// An empty string parses to an inactive schedule. The result is
// validated structurally; node ranges are checked at Compile time
// when the graph is known.
func ParseSchedule(s string) (*Schedule, error) {
	sch := &Schedule{}
	s = strings.TrimSpace(s)
	if s == "" {
		return sch, nil
	}
	for _, term := range strings.Split(s, ",") {
		term = strings.TrimSpace(term)
		key, val, ok := strings.Cut(term, "=")
		if !ok || val == "" {
			return nil, fmt.Errorf("churn: term %q is not key=value", term)
		}
		var err error
		switch key {
		case "seed":
			sch.Seed, err = strconv.ParseInt(val, 10, 64)
		case "join":
			var e Event
			if e, err = parseEvent(val); err == nil {
				sch.Joins = append(sch.Joins, e)
			}
		case "leave":
			var e Event
			if e, err = parseEvent(val); err == nil {
				sch.Leaves = append(sch.Leaves, e)
			}
		case "move":
			err = parseMove(sch, val)
		case "every":
			sch.Every, err = strconv.ParseInt(val, 10, 64)
		case "repair":
			sch.Repair, err = ParseRepairMode(val)
		default:
			return nil, fmt.Errorf("churn: unknown term %q (want seed, join, leave, move, every, or repair)", key)
		}
		if err != nil {
			return nil, fmt.Errorf("churn: term %q: %w", term, err)
		}
	}
	if err := sch.Validate(0); err != nil {
		return nil, err
	}
	return sch, nil
}

func parseEvent(val string) (Event, error) {
	nodeStr, atStr, ok := strings.Cut(val, "@")
	if !ok {
		return Event{}, fmt.Errorf("want node@slot")
	}
	var e Event
	var err error
	if e.Node, err = strconv.Atoi(nodeStr); err != nil {
		return Event{}, err
	}
	if e.At, err = strconv.ParseInt(atStr, 10, 64); err != nil {
		return Event{}, err
	}
	return e, nil
}

func parseMove(sch *Schedule, val string) error {
	nodeStr, rest, ok := strings.Cut(val, "@")
	if !ok {
		return fmt.Errorf("want node@slot:x:y")
	}
	parts := strings.Split(rest, ":")
	if len(parts) != 3 {
		return fmt.Errorf("want node@slot:x:y")
	}
	var w Waypoint
	var err error
	if w.Node, err = strconv.Atoi(nodeStr); err != nil {
		return err
	}
	if w.At, err = strconv.ParseInt(parts[0], 10, 64); err != nil {
		return err
	}
	if w.X, err = strconv.ParseFloat(parts[1], 64); err != nil {
		return err
	}
	if w.Y, err = strconv.ParseFloat(parts[2], 64); err != nil {
		return err
	}
	if !isFinite(w.X) || !isFinite(w.Y) {
		return fmt.Errorf("non-finite coordinates (%g, %g)", w.X, w.Y)
	}
	sch.Waypoints = append(sch.Waypoints, w)
	return nil
}

// String renders the schedule back in ParseSchedule's syntax; an
// inactive schedule renders as "". Parse(s.String()) reproduces s.
func (s *Schedule) String() string {
	if s == nil {
		return ""
	}
	var terms []string
	for _, e := range s.Joins {
		terms = append(terms, fmt.Sprintf("join=%d@%d", e.Node, e.At))
	}
	for _, e := range s.Leaves {
		terms = append(terms, fmt.Sprintf("leave=%d@%d", e.Node, e.At))
	}
	for _, w := range s.Waypoints {
		terms = append(terms, fmt.Sprintf("move=%d@%d:%g:%g", w.Node, w.At, w.X, w.Y))
	}
	if s.Every > 0 {
		terms = append(terms, fmt.Sprintf("every=%d", s.Every))
	}
	if s.Repair != RepairRetract {
		terms = append(terms, fmt.Sprintf("repair=%s", s.Repair))
	}
	if s.Seed != 0 {
		terms = append(terms, fmt.Sprintf("seed=%d", s.Seed))
	}
	return strings.Join(terms, ",")
}
