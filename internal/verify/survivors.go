package verify

import (
	"fmt"

	"radiocolor/internal/graph"
)

// SurvivorReport is the correctness-under-fault verdict: it judges a
// coloring produced by a faulty run by separating hard failures from
// graceful degradation. A crashed node losing its color (or never
// getting one) is the expected cost of a fail-stop fault; two *live*
// adjacent nodes sharing a color is an algorithm bug no fault excuses,
// because the protocol's safety argument (Theorem 2's independence)
// never relies on every node surviving.
type SurvivorReport struct {
	// Survivors counts live nodes; DownNodes counts crashed ones.
	Survivors, DownNodes int
	// HardViolations lists edges between two live nodes sharing a
	// color — hard failures (capped at 64).
	HardViolations []Violation
	// Degraded lists live nodes without a color — graceful degradation
	// (a surviving node may be stuck waiting on a crashed leader;
	// capped at 64). Down nodes are not listed.
	Degraded []int32
	// SurvivorsColored counts live nodes holding a color.
	SurvivorsColored int
	// NumColors and MaxColor describe the palette used by survivors —
	// palette growth under faults is reported, not judged.
	NumColors int
	MaxColor  int32
}

// Hard reports whether the run hard-failed: some pair of live adjacent
// nodes share a color.
func (r *SurvivorReport) Hard() bool { return len(r.HardViolations) > 0 }

// Graceful reports whether the outcome is acceptable under faults:
// no hard violations (crashed or degraded nodes are tolerated).
func (r *SurvivorReport) Graceful() bool { return !r.Hard() }

// String implements fmt.Stringer.
func (r *SurvivorReport) String() string {
	return fmt.Sprintf("survivors=%d down=%d colored=%d degraded=%d hard=%d colors=%d max=%d",
		r.Survivors, r.DownNodes, r.SurvivorsColored, len(r.Degraded),
		len(r.HardViolations), r.NumColors, r.MaxColor)
}

// CheckSurvivors validates colors over the live subgraph. down[v]
// marks node v as crashed at the end of the run (nil means nobody is
// down, reducing to Check's completeness view). colors[v] is node v's
// color or Uncolored, as in Check.
func CheckSurvivors(g *graph.Graph, colors []int32, down []bool) *SurvivorReport {
	if len(colors) != g.N() {
		panic(fmt.Sprintf("verify: %d colors for %d nodes", len(colors), g.N()))
	}
	if down != nil && len(down) != g.N() {
		panic(fmt.Sprintf("verify: %d down flags for %d nodes", len(down), g.N()))
	}
	r := &SurvivorReport{MaxColor: -1}
	used := make(map[int32]bool)
	isDown := func(v int32) bool { return down != nil && down[v] }
	for v := 0; v < g.N(); v++ {
		if isDown(int32(v)) {
			r.DownNodes++
			continue
		}
		r.Survivors++
		c := colors[v]
		if c == Uncolored {
			if len(r.Degraded) < capList {
				r.Degraded = append(r.Degraded, int32(v))
			}
			continue
		}
		r.SurvivorsColored++
		if !used[c] {
			used[c] = true
			r.NumColors++
			if c > r.MaxColor {
				r.MaxColor = c
			}
		}
		for _, u := range g.Adj(v) {
			if int(u) > v && !isDown(u) && colors[u] == c {
				if len(r.HardViolations) < capList {
					r.HardViolations = append(r.HardViolations, Violation{U: int32(v), V: u, Color: c})
				}
			}
		}
	}
	return r
}

// DownSet converts a crashed-node id list (e.g. radio.Result.Down) to
// the boolean mask CheckSurvivors takes.
func DownSet(n int, ids []int32) []bool {
	if len(ids) == 0 {
		return nil
	}
	down := make([]bool, n)
	for _, v := range ids {
		down[v] = true
	}
	return down
}
