package radio

import "testing"

func TestPerNodeEnergy(t *testing.T) {
	r := &Result{
		Slots:     100,
		WakeSlot:  []int64{0, 40, 200},
		PerNodeTx: []int64{10, 0, 0},
	}
	m := EnergyModel{TxCost: 2, ListenCost: 1}
	e := r.PerNodeEnergy(m)
	// Node 0: 10 tx + 90 listen = 110; node 1: 60 listen; node 2: never
	// woke (wake after end) → 0.
	if e[0] != 110 || e[1] != 60 || e[2] != 0 {
		t.Errorf("energy = %v", e)
	}
	if r.TotalEnergy(m) != 170 {
		t.Errorf("total = %v", r.TotalEnergy(m))
	}
	if d := DefaultEnergyModel(); d.TxCost <= d.ListenCost || d.ListenCost <= 0 {
		t.Errorf("default model odd: %+v", d)
	}
}

func TestEnergyOnRealRun(t *testing.T) {
	g := line(4)
	_, cfg := buildScripted(g, [][]bool{{true, true}, nil, nil, {true}}, WakeUniform(4, 3, 9))
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e := res.PerNodeEnergy(DefaultEnergyModel())
	for v, x := range e {
		if x < 0 {
			t.Errorf("negative energy at %d: %v", v, x)
		}
	}
	if res.TotalEnergy(DefaultEnergyModel()) <= 0 {
		t.Error("total energy non-positive")
	}
}
