package core

import "fmt"

// Transition records one state change of a node, refining Fig. 2's
// diagram with the slot at which each edge was taken.
type Transition struct {
	Slot  int64
	Phase Phase
	// Class is the verification/color class entered (meaningful for
	// PhaseWaiting and PhaseColored).
	Class int32
}

// String implements fmt.Stringer.
func (tr Transition) String() string {
	switch tr.Phase {
	case PhaseWaiting:
		return fmt.Sprintf("[%7d] → A_%d (waiting)", tr.Slot, tr.Class)
	case PhaseActive:
		return fmt.Sprintf("[%7d] → A_%d (active)", tr.Slot, tr.Class)
	case PhaseRequest:
		return fmt.Sprintf("[%7d] → R", tr.Slot)
	case PhaseColored:
		return fmt.Sprintf("[%7d] → C_%d (decided)", tr.Slot, tr.Class)
	default:
		return fmt.Sprintf("[%7d] → %v", tr.Slot, tr.Phase)
	}
}

// EnableHistory makes the node record its state transitions; call before
// the simulation starts. Recording costs one append per transition (a
// node makes O(κ₂) of them), so it is cheap enough for full runs, but it
// is off by default to keep experiment memory flat.
func (v *Node) EnableHistory() { v.recordHistory = true }

// History returns the recorded transitions in order (nil unless
// EnableHistory was called).
func (v *Node) History() []Transition { return v.history }

// SetPhaseHook installs fn to be called on every phase transition with
// (slot, node id, previous phase, new phase, class entered). Every phase
// change in the state machine flows through logTransition, so the hook
// sees the complete trajectory Asleep → Waiting → … → Colored.
//
// Transitions fire inside Send, which the engine may run on several
// goroutines (radio.Config.Workers > 1), so fn must be safe for
// concurrent use — the internal/obs collectors are. A nil fn disables
// the hook; the disabled cost is one branch per transition, and a node
// makes only O(κ₂) transitions over its lifetime.
func (v *Node) SetPhaseHook(fn func(slot int64, node int32, from, to Phase, class int32)) {
	v.phaseHook = fn
}

// logTransition reports a phase change to the hook and appends to the
// node's history when enabled. The current slot is tracked by the
// per-slot entry points (Send/Recv), which stamp v.nowSlot before any
// transition can occur.
func (v *Node) logTransition(phase Phase, class int32) {
	if v.phaseHook != nil {
		v.phaseHook(v.nowSlot, int32(v.id), v.prevPhase, phase, class)
	}
	v.prevPhase = phase
	if !v.recordHistory {
		return
	}
	v.history = append(v.history, Transition{Slot: v.nowSlot, Phase: phase, Class: class})
}
