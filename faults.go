package radiocolor

import (
	"fmt"

	"radiocolor/internal/fault"
)

// FaultConfig asks a run to inject deterministic faults: lossy links,
// burst fading, fail-stop node crashes (with optional restart),
// adversarial jammers, and clock skew. All fault randomness derives
// from Seed (defaulting to Options.Seed), so two runs with equal
// options inject identical faults — "same seed, same chaos". The
// engine's hot loop pays one nil check per phase when Faults is unset,
// and the output is then bit-identical to a fault-free run.
//
// Runs with faults typically finish with Outcome.Complete == false
// (crashed nodes hold no color); Outcome.Faults separates that
// graceful degradation from hard failures (two live adjacent nodes
// sharing a color).
type FaultConfig struct {
	// Seed drives the fault coins (0 = use Options.Seed).
	Seed int64
	// Loss is the per-link i.i.d. probability that a successful
	// reception is dropped.
	Loss float64
	// Burst adds windowed Gilbert-Elliott burst loss.
	Burst *BurstLoss
	// Crashes schedules fail-stop failures, at most one per node.
	Crashes []NodeCrash
	// Jammers corrupt slots at their victim receivers.
	Jammers []Jam
	// SkewProb offsets each node's clock by half a slot with this
	// probability; skewed runs go through the half-slot engine (the
	// paper's non-aligned model), where Workers is ignored.
	SkewProb float64
}

// BurstLoss approximates a Gilbert-Elliott loss channel: each
// (link, window) pair of Window slots is bad with probability PBad;
// receptions are lost with probability LossBad in bad windows
// (0 means 1) and LossGood otherwise.
type BurstLoss struct {
	PBad     float64
	Window   int64
	LossBad  float64
	LossGood float64
}

// NodeCrash fail-stops Node at slot At; Restart > At revives it with
// cleared protocol state (0 = never).
type NodeCrash struct {
	Node    int
	At      int64
	Restart int64
}

// Jam corrupts slots [From, Until) at the victim Nodes (empty = all).
// Period > 0 jams only the first Duty slots of each period; Prob in
// (0,1) jams each hit slot with that probability.
type Jam struct {
	Nodes  []int
	From   int64
	Until  int64
	Period int64
	Duty   int64
	Prob   float64
}

// ParseFaults parses the compact profile syntax shared by
// cmd/colorsim -faults and the serve job API, e.g.
// "loss=0.05,crash=3@500:900,jam=100:400@0+1~0.8,skew=0.25,seed=42".
// An empty string yields nil (no faults).
func ParseFaults(s string) (*FaultConfig, error) {
	p, err := fault.ParseProfile(s)
	if err != nil {
		return nil, fmt.Errorf("radiocolor: %w", err)
	}
	if !p.Active() {
		return nil, nil
	}
	f := &FaultConfig{Seed: p.Seed, Loss: p.Loss, SkewProb: p.SkewProb}
	if b := p.Burst; b != nil {
		f.Burst = &BurstLoss{PBad: b.PBad, Window: b.Window, LossBad: b.LossBad, LossGood: b.LossGood}
	}
	for _, c := range p.Crashes {
		f.Crashes = append(f.Crashes, NodeCrash{Node: c.Node, At: c.At, Restart: c.Restart})
	}
	for _, j := range p.Jammers {
		f.Jammers = append(f.Jammers, Jam{
			Nodes: append([]int(nil), j.Nodes...),
			From:  j.From, Until: j.Until, Period: j.Period, Duty: j.Duty, Prob: j.Prob,
		})
	}
	return f, nil
}

// String renders the config in ParseFaults' syntax.
func (f *FaultConfig) String() string { return f.profile().String() }

// profile converts to the internal representation.
func (f *FaultConfig) profile() *fault.Profile {
	if f == nil {
		return nil
	}
	p := &fault.Profile{Seed: f.Seed, Loss: f.Loss, SkewProb: f.SkewProb}
	if b := f.Burst; b != nil {
		p.Burst = &fault.Burst{PBad: b.PBad, Window: b.Window, LossBad: b.LossBad, LossGood: b.LossGood}
	}
	for _, c := range f.Crashes {
		p.Crashes = append(p.Crashes, fault.Crash{Node: c.Node, At: c.At, Restart: c.Restart})
	}
	for _, j := range f.Jammers {
		p.Jammers = append(p.Jammers, fault.Jammer{
			Nodes: j.Nodes, From: j.From, Until: j.Until,
			Period: j.Period, Duty: j.Duty, Prob: j.Prob,
		})
	}
	return p
}

// FaultOutcome reports what the fault layer did to a run and the
// graceful-degradation verdict over the survivors.
type FaultOutcome struct {
	// Lost and Jammed count suppressed receptions; Crashes and
	// Restarts count node lifecycle events.
	Lost, Jammed, Crashes, Restarts int64
	// Down lists the nodes crashed at the end of the run.
	Down []int
	// Survivors counts live nodes; SurvivorsColored those holding a
	// color; Degraded the live-but-uncolored remainder (e.g. stuck on
	// a crashed leader).
	Survivors, SurvivorsColored, Degraded int
	// HardViolations counts edges between two live nodes sharing a
	// color. Graceful is true when there are none: crashed or degraded
	// nodes are the accepted cost of the faults, a live-live conflict
	// never is.
	HardViolations int
	Graceful       bool
}
