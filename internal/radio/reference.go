package radio

import (
	"errors"
	"sync"
)

// This file retains the pre-CSR slot loop — the seed implementation the
// model semantics were originally validated against — as an executable
// specification. It chases the graph's per-vertex adjacency slices,
// scans all n nodes in every phase, and resets its receive scratch
// through a touched list, exactly as the original engine did. It is
// deliberately NOT optimized: its only jobs are (a) anchoring the
// differential tests that pin the CSR kernel bit-for-bit to the seed
// semantics and (b) serving as the baseline in the kernel throughput
// benchmarks (bench_kernel_test.go, BENCH_kernel.json).

// ReferenceEngine executes a Config with the original slice-based slot
// loop. Its Result is bit-identical to Engine's on every input.
type ReferenceEngine struct {
	cfg     Config
	n       int
	slot    int64
	awake   []bool
	out     []Message
	order   []int32
	next    int
	numDone int
	decided []bool
	res     Result

	// Per-slot scratch, reset via the touched list.
	recvCount []int32
	recvMsg   []Message
	touched   []int32
}

// NewReferenceEngine validates the configuration and prepares a
// reference run. It accepts and rejects exactly the same inputs as
// NewEngine.
func NewReferenceEngine(cfg Config) (*ReferenceEngine, error) {
	if err := validateConfig(&cfg); err != nil {
		return nil, err
	}
	if cfg.Faults != nil {
		// The reference engine is the executable spec of the fault-free
		// model; fault runs are pinned against the CSR kernel instead.
		return nil, errors.New("radio: the reference engine does not support fault injection")
	}
	if cfg.Medium != nil {
		// Likewise the spec of the paper's reception rule only; medium
		// runs are pinned against the CSR kernel's graph medium.
		return nil, errors.New("radio: the reference engine does not support a pluggable medium")
	}
	n := cfg.G.N()
	e := &ReferenceEngine{
		cfg:       cfg,
		n:         n,
		awake:     make([]bool, n),
		out:       make([]Message, n),
		decided:   make([]bool, n),
		recvCount: make([]int32, n),
		recvMsg:   make([]Message, n),
	}
	e.order = wakeOrder(cfg.Wake)
	e.res = newResult(cfg.Wake)
	return e, nil
}

func (e *ReferenceEngine) dropped(slot int64, receiver int32) bool {
	return dropCoin(e.cfg.DropSeed, slot, receiver, e.cfg.DropProb)
}

func (e *ReferenceEngine) captured(slot int64, receiver int32) bool {
	return captureCoin(e.cfg.DropSeed, slot, receiver, e.cfg.CaptureProb)
}

// Step simulates one slot with the seed loop. It returns false when the
// run is over.
func (e *ReferenceEngine) Step() bool {
	t := e.slot
	ob := e.cfg.Observer
	met := e.cfg.Metrics
	// Wake-ups scheduled for this slot.
	for e.next < e.n && e.cfg.Wake[e.order[e.next]] == t {
		id := e.order[e.next]
		e.awake[id] = true
		if ob != nil {
			ob.OnWake(t, NodeID(id))
		}
		if met != nil {
			met.AddWakeup()
		}
		e.cfg.Protocols[id].Start(t)
		e.next++
	}

	// Send phase: every awake node ticks and chooses transmit/listen.
	if e.cfg.Workers > 1 {
		e.parallelSend(t)
	} else {
		for i := 0; i < e.n; i++ {
			if e.awake[i] {
				e.out[i] = e.cfg.Protocols[i].Send(t)
			}
		}
	}

	// Resolve phase: count transmitting neighbors at each node.
	for i := 0; i < e.n; i++ {
		msg := e.out[i]
		if msg == nil {
			continue
		}
		e.res.Transmissions++
		e.res.PerNodeTx[i]++
		if bits := msg.Bits(e.cfg.NEstimate); bits > e.res.MaxMessageBits {
			e.res.MaxMessageBits = bits
		}
		if ob != nil {
			ob.OnTransmit(t, NodeID(i), msg)
		}
		if met != nil {
			met.AddTransmission()
		}
		for _, u := range e.cfg.G.Adj(i) {
			if e.recvCount[u] == 0 {
				e.touched = append(e.touched, u)
				e.recvMsg[u] = msg
			}
			e.recvCount[u]++
		}
	}

	// Deliver phase: exactly-one rule at awake listeners.
	for _, u := range e.touched {
		count := e.recvCount[u]
		e.recvCount[u] = 0
		msg := e.recvMsg[u]
		e.recvMsg[u] = nil
		if !e.awake[u] || e.out[u] != nil {
			continue // asleep, or transmitting: hears nothing
		}
		if count >= 2 {
			if count == 2 && e.captured(t, u) {
				// Capture effect: the first-recorded (lowest-indexed)
				// transmitter's signal survives the two-way collision.
				e.res.Deliveries++
				e.res.Captures++
				if ob != nil {
					ob.OnDeliver(t, NodeID(u), msg)
				}
				if met != nil {
					met.AddDelivery()
					met.AddCapture()
				}
				e.cfg.Protocols[u].Recv(t, msg)
				continue
			}
			e.res.Collisions++
			if ob != nil {
				ob.OnCollision(t, NodeID(u), int(count))
			}
			if met != nil {
				met.AddCollision()
			}
			continue
		}
		if e.dropped(t, u) {
			if met != nil {
				met.AddDrop()
			}
			continue
		}
		e.res.Deliveries++
		if ob != nil {
			ob.OnDeliver(t, NodeID(u), msg)
		}
		if met != nil {
			met.AddDelivery()
		}
		e.cfg.Protocols[u].Recv(t, msg)
	}
	e.touched = e.touched[:0]
	for i := 0; i < e.n; i++ {
		e.out[i] = nil
	}

	// Decision detection.
	for i := 0; i < e.n; i++ {
		if !e.decided[i] && e.awake[i] && e.cfg.Protocols[i].Done() {
			e.decided[i] = true
			e.numDone++
			e.res.DecideSlot[i] = t
			if ob != nil {
				ob.OnDecide(t, NodeID(i))
			}
			if met != nil {
				met.AddDecision()
			}
		}
	}
	if ob != nil {
		ob.OnSlot(t)
	}
	if met != nil {
		met.AddSlot()
	}
	e.slot++
	simulatedSlots.Add(1)
	e.res.Slots = e.slot
	if e.numDone == e.n {
		e.res.AllDone = true
		return false
	}
	return e.slot < e.cfg.MaxSlots
}

func (e *ReferenceEngine) parallelSend(t int64) {
	workers := e.cfg.Workers
	chunk := (e.n + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > e.n {
			hi = e.n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				if e.awake[i] {
					e.out[i] = e.cfg.Protocols[i].Send(t)
				}
			}
		}(lo, hi)
	}
	wg.Wait()
}

// Result returns the statistics accumulated so far.
func (e *ReferenceEngine) Result() *Result { return &e.res }

// Slot returns the next slot to be simulated.
func (e *ReferenceEngine) Slot() int64 { return e.slot }

// RunReference executes the configuration to completion on the
// reference engine.
func RunReference(cfg Config) (*Result, error) {
	e, err := NewReferenceEngine(cfg)
	if err != nil {
		return nil, err
	}
	for e.Step() {
	}
	return e.Result(), nil
}
