package radio

import (
	"reflect"
	"testing"

	"radiocolor/internal/churn"
	"radiocolor/internal/fault"
	"radiocolor/internal/graph"
)

func mustPlan(t *testing.T, s *churn.Schedule, g *graph.Graph) *churn.Plan {
	t.Helper()
	p, err := s.Compile(churn.Env{G: g})
	if err != nil {
		t.Fatal(err)
	}
	if p == nil {
		t.Fatal("active schedule compiled to a nil plan")
	}
	return p
}

func TestChurnLeaveSilencesNode(t *testing.T) {
	// 0-1-2: node 0 transmits every slot but leaves at slot 2. Node 1
	// must hear it in slots 0 and 1 only; the leaver's undecided state
	// must not block termination (final leave, graceful degradation).
	g := line(3)
	protos, cfg := buildScripted(g, [][]bool{
		{true, true, true, true, true, true},
		make([]bool, 6),
		make([]bool, 6),
	}, WakeSynchronous(3))
	protos[0].doneAt = 10_000 // never decides within the run
	cfg.Churn = mustPlan(t, &churn.Schedule{
		Leaves: []churn.Event{{Node: 0, At: 2}},
	}, g)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := protos[1].recvSlot; !reflect.DeepEqual(got, []int64{0, 1}) {
		t.Errorf("node 1 heard slots %v, want [0 1]", got)
	}
	if res.Leaves != 1 || res.Joins != 0 {
		t.Errorf("leaves=%d joins=%d, want 1/0", res.Leaves, res.Joins)
	}
	if !reflect.DeepEqual(res.Left, []int32{0}) {
		t.Errorf("Left = %v, want [0]", res.Left)
	}
	if res.Down != nil {
		t.Errorf("Down = %v for a run without faults", res.Down)
	}
	if res.AllDone {
		t.Error("AllDone with a departed undecided node")
	}
}

func TestChurnLateJoinStartsAtJoinSlot(t *testing.T) {
	// 0-1-2: node 2's first event is a join at slot 3, so it is absent
	// from slot 0 (its wake slot) and must neither start nor hear node
	// 1's beacons until it joins.
	g := line(3)
	protos, cfg := buildScripted(g, [][]bool{
		make([]bool, 8),
		{true, true, true, true, true, true, true, true},
		make([]bool, 8),
	}, WakeSynchronous(3))
	cfg.Churn = mustPlan(t, &churn.Schedule{
		Joins:  []churn.Event{{Node: 2, At: 3}},
		Repair: churn.RepairNone, // scripted protocols don't color
	}, g)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if protos[2].wokeAt != 3 || protos[2].started != 1 {
		t.Errorf("node 2 woke at %d (started %d times), want slot 3 once",
			protos[2].wokeAt, protos[2].started)
	}
	for _, s := range protos[2].recvSlot {
		if s < 3 {
			t.Errorf("node 2 received in slot %d while absent", s)
		}
	}
	if len(protos[2].recvSlot) == 0 {
		t.Error("node 2 heard nothing after joining")
	}
	if res.Joins != 1 {
		t.Errorf("joins=%d, want 1", res.Joins)
	}
	if !res.AllDone {
		t.Error("run should complete once the joiner decides")
	}
	if res.WakeSlot[2] != 0 {
		t.Errorf("WakeSlot[2] = %d, want the scheduled 0", res.WakeSlot[2])
	}
}

func TestChurnRejoinResetsProtocol(t *testing.T) {
	// Node 0 leaves at slot 2 and rejoins at slot 5: its protocol must
	// be Reset and restarted from scratch, exactly like a fault restart.
	g := line(2)
	protos, cfg := buildScripted(g, [][]bool{
		make([]bool, 10),
		{true, true, true, true, true, true, true, true, true, true},
	}, WakeSynchronous(2))
	cfg.Churn = mustPlan(t, &churn.Schedule{
		Leaves: []churn.Event{{Node: 0, At: 2}},
		Joins:  []churn.Event{{Node: 0, At: 5}},
		Repair: churn.RepairNone,
	}, g)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if protos[0].started != 2 {
		t.Errorf("node 0 started %d times, want 2 (wake + rejoin)", protos[0].started)
	}
	if protos[0].wokeAt != 5 {
		t.Errorf("node 0's last start at %d, want rejoin slot 5", protos[0].wokeAt)
	}
	// Reset cleared the pre-leave receptions; everything on record is
	// post-rejoin.
	for _, s := range protos[0].recvSlot {
		if s < 5 {
			t.Errorf("reception at slot %d survived the reset", s)
		}
	}
	if res.Joins != 1 || res.Leaves != 1 {
		t.Errorf("joins=%d leaves=%d, want 1/1", res.Joins, res.Leaves)
	}
	if len(res.Left) != 0 {
		t.Errorf("Left = %v after a rejoin", res.Left)
	}
	if !res.AllDone {
		t.Error("run should complete after the rejoin")
	}
}

func TestChurnKeepsRunningThroughScheduledBatches(t *testing.T) {
	// Everyone decides within a few slots, but a join is scheduled at
	// slot 40: the run must not terminate early, apply the perturbation,
	// and only finish once the late joiner has decided too.
	g := line(3)
	_, cfg := buildScripted(g, [][]bool{
		{true}, make([]bool, 1), make([]bool, 1),
	}, WakeSynchronous(3))
	cfg.Churn = mustPlan(t, &churn.Schedule{
		Joins:  []churn.Event{{Node: 2, At: 40}},
		Repair: churn.RepairNone,
	}, g)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Slots <= 40 {
		t.Errorf("run ended at slot %d, before the scheduled join at 40", res.Slots)
	}
	if res.Joins != 1 || !res.AllDone {
		t.Errorf("joins=%d allDone=%v, want 1/true", res.Joins, res.AllDone)
	}
	if res.DecideSlot[2] < 40 {
		t.Errorf("node 2 decided at %d, before it joined", res.DecideSlot[2])
	}
}

// recolorProto decides immediately with a preassigned color; a Reset
// (conflict retraction or rejoin) makes it re-decide with a fallback
// color on its next tick. It never transmits — repair semantics are
// the engine's, not the protocol's, so the scripted minimum suffices.
type recolorProto struct {
	color, fallback int32
	resets          int
	done            bool
}

func (p *recolorProto) Start(int64) {}
func (p *recolorProto) Send(int64) Message {
	p.done = true
	return nil
}
func (p *recolorProto) Recv(int64, Message) {}
func (p *recolorProto) Done() bool          { return p.done }
func (p *recolorProto) Color() int32        { return p.color }
func (p *recolorProto) Reset() {
	p.resets++
	p.color = p.fallback
	p.done = false
}

func TestChurnRepairRetractsLaterDecider(t *testing.T) {
	// Nodes 0 and 2 are not adjacent and both pick color 7; node 2
	// wakes (and so decides) later. At slot 10 mobility is approximated
	// by a leave/rejoin of node 1 — but the conflict edge comes from a
	// geometric compile in the churn package tests; here the adds are
	// produced by node 2 itself leaving and rejoining, which re-adds
	// its edges. To get a direct 0-2 conflict edge the graph is a
	// triangle minus (0,2) with node 1 absent, so node 2's rejoin adds
	// edge (0,2)... that edge does not exist in the base graph, so
	// instead: node 0 and node 1 are adjacent in the base graph, same
	// color, and node 1 leaves at 5 and rejoins at 10. The rejoin
	// re-adds (0,1), both endpoints decided with color 7 — but the
	// rejoiner itself was just reset, so no conflict. The genuine
	// standing-vs-standing conflict therefore uses three nodes: 1
	// leaves before anyone decides, 0 and 2 (only connected through 1)
	// decide with the same color, and 1's rejoin re-adds edges to both
	// — no conflict on those either (1 is fresh). The only edge that
	// can conflict is one between two standing decided nodes, which in
	// a non-geometric compile only appears via a rejoin. So: make the
	// conflict by REJOINING A DECIDED NEIGHBORHOOD — nodes 0-1 adjacent,
	// 1 absent from slot 0 (late join at 8). Node 0 decides with 7 at
	// its first tick; node 1 joins at 8, decides with 7 at slot 8; no
	// repair (the join added the edge before 1 decided). Conflict
	// repair across a join therefore needs the joiner to already be
	// decided — impossible, a join always resets. The retraction path
	// is thus exercised directly through a crafted Plan instead of a
	// compiled schedule.
	g := line(3) // 0-1-2; edge (0,2) absent in the base graph
	protos := []Protocol{
		&recolorProto{color: 7, fallback: 3},
		&recolorProto{color: 1, fallback: 2},
		&recolorProto{color: 7, fallback: 9},
	}
	wake := []int64{0, 0, 2} // node 2 decides later -> it is the victim
	plan := planWithConflictEdge(t, g)
	cfg := Config{G: g, Protocols: protos, Wake: wake, MaxSlots: 100, Churn: plan}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ConflictsRepaired != 1 {
		t.Fatalf("ConflictsRepaired = %d, want 1", res.ConflictsRepaired)
	}
	p0 := protos[0].(*recolorProto)
	p2 := protos[2].(*recolorProto)
	if p0.resets != 0 || p2.resets != 1 {
		t.Errorf("resets: node0=%d node2=%d, want 0/1 (later decider retracts)", p0.resets, p2.resets)
	}
	if p0.Color() == p2.Color() {
		t.Errorf("conflict persists: both endpoints hold color %d", p0.Color())
	}
	if !res.AllDone {
		t.Error("victim should have re-decided")
	}
	if res.DecideSlot[2] < 10 {
		t.Errorf("victim's decide slot %d predates the retraction", res.DecideSlot[2])
	}
}

// planWithConflictEdge builds a hand-crafted one-batch plan that adds
// edge (0,2) at slot 10, the shape a geometric (mobility) compile
// produces when two same-colored nodes drift into range.
func planWithConflictEdge(t *testing.T, g *graph.Graph) *churn.Plan {
	t.Helper()
	// A leave/rejoin pair on node 1 carries the batch; the add of
	// (0,2) is injected into the compiled batch exactly where a mover
	// delta would sit. Using the compiler keeps the plan's invariants
	// (sorted joins, exact leave deltas) intact.
	plan := mustPlan(t, &churn.Schedule{
		Leaves: []churn.Event{{Node: 1, At: 9}},
		Joins:  []churn.Event{{Node: 1, At: 10}},
	}, g)
	last := &plan.Batches[len(plan.Batches)-1]
	if last.Slot != 10 {
		t.Fatalf("expected the rejoin batch at slot 10, got %d", last.Slot)
	}
	last.Delta.Adds = append(last.Delta.Adds, [2]int32{0, 2})
	return plan
}

func TestChurnBitIdenticalAcrossWorkersAndTiles(t *testing.T) {
	// One fixed schedule, four engine shapes: results must match
	// bit-for-bit at any worker count and tiled vs untiled.
	const n = 64
	g := line(n)
	sched := &churn.Schedule{
		Leaves: []churn.Event{{Node: 5, At: 3}, {Node: 40, At: 6}, {Node: 17, At: 9}},
		Joins:  []churn.Event{{Node: 5, At: 12}, {Node: 40, At: 15}, {Node: 63, At: 4}},
		Repair: churn.RepairNone,
	}
	run := func(workers, tiles int) *Result {
		scripts := make([][]bool, n)
		wake := make([]int64, n)
		for i := range scripts {
			s := make([]bool, 20)
			for j := range s {
				s[j] = (i+j)%7 == 0 // deterministic sparse beaconing
			}
			scripts[i] = s
			wake[i] = int64(i % 5)
		}
		_, cfg := buildScripted(g, scripts, wake)
		cfg.Workers = workers
		cfg.Tiles = tiles
		cfg.Churn = mustPlan(t, sched, g)
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	want := run(1, 0)
	for _, shape := range [][2]int{{4, 0}, {1, 4}, {4, 4}} {
		got := run(shape[0], shape[1])
		if !reflect.DeepEqual(got, want) {
			t.Errorf("Workers=%d Tiles=%d diverged:\n got %+v\nwant %+v", shape[0], shape[1], got, want)
		}
	}
}

func TestChurnRejectsInvalidCombinations(t *testing.T) {
	g := line(3)
	_, cfg := buildScripted(g, [][]bool{{true}, {false}, {false}}, WakeSynchronous(3))
	plan := mustPlan(t, &churn.Schedule{
		Leaves: []churn.Event{{Node: 0, At: 2}},
		Joins:  []churn.Event{{Node: 0, At: 5}},
		Repair: churn.RepairNone, // so each case below fails for its own reason
	}, g)

	// Fault victim overlap.
	cfg.Churn = plan
	cfg.Faults = mustInjector(t, &fault.Profile{
		Crashes: []fault.Crash{{Node: 0, At: 3}},
	}, 3)
	if _, err := NewEngine(cfg); err == nil {
		t.Error("engine accepted a node that is both crash victim and churn subject")
	}
	cfg.Faults = nil

	// Unaligned runner.
	if _, err := RunUnaligned(cfg, nil); err == nil {
		t.Error("RunUnaligned accepted a churn plan")
	}

	// Joiner without Restartable.
	bad := Config{
		G:         g,
		Protocols: []Protocol{&fixedProto{}, &fixedProto{}, &fixedProto{}},
		Wake:      WakeSynchronous(3),
		Churn:     plan,
	}
	if _, err := NewEngine(bad); err == nil {
		t.Error("engine accepted a rejoin for a non-Restartable protocol")
	}

	// Wrong size.
	small := Config{G: line(2), Protocols: make([]Protocol, 2), Wake: WakeSynchronous(2), Churn: plan}
	for i := range small.Protocols {
		small.Protocols[i] = &scriptProto{doneAt: -1}
	}
	if _, err := NewEngine(small); err == nil {
		t.Error("engine accepted a plan compiled for a different node count")
	}
}

// TestChurnUnsetZeroAlloc pins the fifth seam's no-regression contract
// from both sides: with Config.Churn nil the slot loop allocates
// nothing per slot under live traffic, and with a plan whose batches
// are exhausted the churn cursor check itself is also allocation-free
// (steady state between and after perturbations).
func TestChurnUnsetZeroAlloc(t *testing.T) {
	n := 32
	build := func(plan *churn.Plan) *Engine {
		protos := make([]Protocol, n)
		for i := range protos {
			protos[i] = &beaconProto{msg: &testMsg{}, mod: 3}
		}
		e, err := NewEngine(Config{
			G: line(n), Protocols: protos, Wake: WakeSynchronous(n),
			MaxSlots: 1 << 40, Churn: plan,
		})
		if err != nil {
			t.Fatal(err)
		}
		return e
	}

	e := build(nil)
	e.Step()
	if allocs := testing.AllocsPerRun(500, func() { e.Step() }); allocs != 0 {
		t.Errorf("nil-churn engine allocates %v per slot under traffic, want 0", allocs)
	}

	// Leaves-only plan (no Restartable requirement): after the last
	// batch slot the churned engine's steady state is allocation-free
	// too.
	ec := build(mustPlan(t, &churn.Schedule{
		Leaves: []churn.Event{{Node: 0, At: 1}},
	}, line(n)))
	for i := 0; i < 4; i++ {
		ec.Step() // run past the batch at slot 1
	}
	if allocs := testing.AllocsPerRun(500, func() { ec.Step() }); allocs != 0 {
		t.Errorf("churned engine allocates %v per slot after its last batch, want 0", allocs)
	}
}
