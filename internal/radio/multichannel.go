package radio

import (
	"errors"
	"fmt"

	"radiocolor/internal/medium"
)

// RunMultiChannel executes cfg over `channels` independent channels
// with per-slot uniform random hopping (see medium.MultiChannel for the
// model and what experiment E21 measures with it). channels must be
// ≥ 1; channels == 1 reproduces Run exactly. The run goes through the
// standard kernel with a medium.MultiChannel instance bound on the
// reception seam, so — unlike the bespoke engine this helper once
// carried — Workers parallelism, fault profiles (Config.Faults) and the
// metrics/observer seams all compose with the channel hopping. Skew
// profiles are still rejected: they need RunUnaligned, which has no
// medium seam.
func RunMultiChannel(cfg Config, channels int, hopSeed int64) (*Result, error) {
	if channels < 1 {
		return nil, fmt.Errorf("radio: %d channels", channels)
	}
	if cfg.Medium != nil {
		return nil, errors.New("radio: RunMultiChannel over a Config that already has a Medium")
	}
	if channels == 1 {
		return Run(cfg)
	}
	if cfg.G == nil {
		return nil, errors.New("radio: nil graph")
	}
	csr := cfg.G.CSR()
	inst, err := medium.MultiChannel{K: channels, HopSeed: hopSeed}.Bind(medium.Env{
		N:       cfg.G.N(),
		Offsets: csr.Offsets,
		Edges:   csr.Edges,
		Seed:    hopSeed,
	})
	if err != nil {
		return nil, err
	}
	cfg.Medium = inst
	return Run(cfg)
}
