// Data collection: the full chain the paper's introduction motivates.
// A fresh sensor deployment initializes itself from scratch with the
// coloring algorithm, derives a TDMA schedule, optionally compacts it,
// and then actually collects data to a sink over a BFS tree — measuring
// what the MAC layer is ultimately for.
//
//	go run ./examples/datacollection
package main

import (
	"fmt"
	"log"

	"radiocolor/internal/collect"
	"radiocolor/internal/core"
	"radiocolor/internal/experiment"
	"radiocolor/internal/radio"
	"radiocolor/internal/reduce"
	"radiocolor/internal/sched"
	"radiocolor/internal/topology"
)

func main() {
	d := topology.RandomUDG(topology.UDGConfig{N: 100, Side: 5.5, Radius: 1.3, Seed: 12})
	if !d.G.Connected() {
		log.Fatal("sample deployment disconnected; change the seed")
	}
	par := experiment.MeasureParams(d)
	fmt.Printf("deployment: %s, Δ=%d, κ₂=%d, diameter=%d\n\n",
		d.Name, par.Delta, par.Kappa2, d.G.Diameter())

	// 1. Initialize from scratch.
	run, err := experiment.RunCore(d, par, radio.WakeSynchronous(d.N()), 5,
		int64(par.Kappa2+2)*par.Threshold()*40, core.Ablation{})
	if err != nil || !run.Correct() {
		log.Fatalf("initialization failed: %v", err)
	}
	fmt.Printf("initialized in %d slots: %d colors, max %d\n",
		run.Radio.MaxLatency(), run.Report.NumColors, run.Report.MaxColor)

	// 2. Optionally compact the palette (E19).
	rNodes, rProtos := reduce.Nodes(run.Colors, 9, reduce.Params{
		N: par.N, Delta: par.Delta, Kappa2: par.Kappa2})
	res, err := radio.Run(radio.Config{G: d.G, Protocols: rProtos,
		Wake: radio.WakeSynchronous(d.N()), MaxSlots: 200_000_000})
	if err != nil || !res.AllDone {
		log.Fatalf("compaction failed: %v", err)
	}
	compacted := make([]int32, d.N())
	for i, v := range rNodes {
		compacted[i] = v.Color()
	}

	// 3. Collect 5 readings from every node to node 0.
	for _, variant := range []struct {
		name   string
		colors []int32
	}{
		{"protocol schedule ", run.Colors},
		{"compacted schedule", compacted},
	} {
		s, err := sched.FromColoring(variant.colors)
		if err != nil {
			log.Fatal(err)
		}
		stats, err := collect.Run(d.G, s, collect.Config{
			Sink: 0, PacketsPerNode: 5, CoinSeed: 3,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s (frame %3d slots): %v\n", variant.name, s.FrameLen, stats)
	}
	fmt.Println("\nsame deployment, same radios — the compacted frame moves data an order")
	fmt.Println("of magnitude faster, which is why low colors matter (Theorem 4).")
}
