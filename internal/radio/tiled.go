package radio

import (
	"sync"
	"sync/atomic"

	"radiocolor/internal/obs"
)

// The tiled slot kernel. The untiled loop (engine.go) streams four
// global phases over all n nodes per slot — Send, resolve, deliver,
// decide — so at 1M+ nodes every phase re-walks a working set far
// beyond cache and the kernel goes memory-bound. The tiled loop
// partitions node ids into contiguous blocks ("tiles", ~32k nodes) and
// makes two tile-major sweeps instead:
//
//	sweep 1, per tile: Send every awake node of the tile, then resolve
//	  each transmitter's intra-tile neighbors against the tile's own
//	  receive accumulators; neighbors outside the tile are bucketed as
//	  (receiver, sender) pairs into a per-(source,destination) exchange
//	  bucket instead of touching remote accumulators.
//	sweep 2, per tile: fold the tile's incoming exchange buckets (the
//	  boundary exchange — only cross-tile edges enter this merge), then
//	  deliver to the tile's touched listeners and run decision
//	  detection over the tile's undecided segment.
//
// After a locality-preserving relabeling (internal/graph HilbertOrder /
// StripOrder / BFSOrder) almost all edges are intra-tile, so one tile's
// slot work — its protocols, accumulators and list segments, a couple
// of MB — stays cache-resident across fused phases instead of being
// streamed four times. Because every accumulator merge is order-free
// (counts add, the winning sender is a min) and the per-node coins are
// pure functions of (seed, slot, node), the tiled loop is bit-identical
// to the untiled engine at any tile and worker count; the tiled
// differential suite pins this. Tiles are independent, so under
// Workers > 1 both sweeps distribute tiles over goroutines with a
// barrier between the sweeps (a non-nil Observer keeps both sweeps
// sequential, exactly like the untiled deliver phase).
//
// The second ingredient is the Quiescent seam: the synthetic bench
// protocol and many real ones permanently fall silent once they have
// decided, and a long asynchronous deployment therefore spends most
// Send calls ticking nodes that can never transmit again. A protocol
// that declares this lets the tiled engine drop it from the Send sweep
// entirely (deliveries to it are still resolved and counted, so every
// Result field is unchanged).

// maxTiles bounds the tile count: the boundary exchange keeps a
// tiles×tiles bucket matrix of slice headers, so the cap keeps that
// matrix (24 MiB at 1024²) from dwarfing the state it organizes.
const maxTiles = 1024

// tileNodes is the tile size AutoTiles aims for: big enough that a
// tile's protocols and accumulators amortize the two-sweep overhead,
// small enough (~2 MB of per-tile state) to stay cache-resident.
const tileNodes = 32 << 10

// AutoTiles returns the tile count Config.Tiles < 0 selects for an
// n-node run: one tile per tileNodes nodes, clamped to [1, maxTiles].
func AutoTiles(n int) int {
	t := n / tileNodes
	if t < 1 {
		t = 1
	}
	if t > maxTiles {
		t = maxTiles
	}
	return t
}

// Quiescent is an optional Protocol extension: a protocol whose
// Quiescent() returns true declares that it has permanently fallen
// silent — every future Send would return nil and its future behavior
// does not depend on further receptions. The tiled engine consults it
// once, in the slot the node's Done() first reports true, and then
// drops the node from the Send sweep and skips its Recv calls; channel
// statistics are unaffected (the node keeps resolving and counting as
// a listener), so results stay bit-identical to an engine that keeps
// ticking the node — which is exactly what the untiled engine does,
// and what the tiled differential suite checks. Fault-injected runs
// ignore the seam (a restart must be able to revive any node).
type Quiescent interface {
	Quiescent() bool
}

// crossRef is one cross-tile reception candidate produced by sweep 1:
// sender from (in the source tile) reaches receiver to (in the
// destination tile). Folded into the destination's accumulators during
// sweep 2's boundary exchange.
type crossRef struct {
	to, from int32
}

// tileTally is one tile's share of the order-free per-slot counters.
type tileTally struct {
	deliverTally
	decisions int64
	silenced  int64
	maxBits   int
}

// tileState is the tiled kernel's standing scratch. All per-tile
// slices are high-water reused ([:0] truncation), so the steady state
// allocates nothing.
type tileState struct {
	tiles int
	size  int32 // nodes per tile; tile of node v is v/size

	// rowLo/rowHi split node v's sorted CSR row edges[offsets[v]:
	// offsets[v+1]] into the cross-below, intra-tile and cross-above
	// spans: [rowLo, rowHi) are v's neighbors inside v's own tile.
	rowLo, rowHi []int32

	// interior[v] marks nodes whose whole neighborhood lives in v's own
	// tile. No boundary-exchange bucket can ever target them, so their
	// receive state is final at the end of their tile's first sweep and
	// (on untraced runs) they are delivered to and decision-polled right
	// there, while the tile's accumulators and protocol state are still
	// cache-hot. After a locality relabeling almost every node is
	// interior, leaving sweep 2 only the tile-boundary ring.
	interior []bool

	// cross[s*tiles+d] is the boundary-exchange bucket from source tile
	// s to destination tile d; only cross-tile edges enter it.
	cross [][]crossRef

	// Per-tile sweep outputs: this slot's transmitters and touched
	// listeners, and the counter tallies folded after sweep 2.
	txs     [][]int32
	touched [][]int32
	tallies []tileTally

	// Per-slot segment bounds of the shared activity lists: tile k owns
	// awakeList[aSeg[k]:aSeg[k+1]], pending[pSeg[k]:pSeg[k+1]] and
	// undecided[uSeg[k]:uSeg[k+1]]. uLen1[k] is the segment length
	// surviving sweep 1's interior decision pass, uLen[k] the final
	// length after sweep 2's boundary pass, used by the sequential
	// squash that re-compacts the list.
	aSeg, pSeg, uSeg []int
	uLen1, uLen      []int
}

// newTileState precomputes the partition for a run: tile bounds and
// the per-node intra-tile row spans. Row bounds come as the engine's
// rowStart/rowEnd view (aliasing either the static offsets array or
// the dynamic CSR's headers); under churn, refreshRows re-derives the
// spans of rows a delta changed.
func newTileState(tiles, n int, rowStart, rowEnd, edges []int32) *tileState {
	size := (n + tiles - 1) / tiles
	tiles = (n + size - 1) / size // drop empty trailing tiles
	ts := &tileState{
		tiles:    tiles,
		size:     int32(size),
		rowLo:    make([]int32, n),
		rowHi:    make([]int32, n),
		interior: make([]bool, n),
		cross:    make([][]crossRef, tiles*tiles),
		txs:      make([][]int32, tiles),
		touched:  make([][]int32, tiles),
		tallies:  make([]tileTally, tiles),
		aSeg:     make([]int, tiles+1),
		pSeg:     make([]int, tiles+1),
		uSeg:     make([]int, tiles+1),
		uLen1:    make([]int, tiles),
		uLen:     make([]int, tiles),
	}
	for v := 0; v < n; v++ {
		lo, hi := rowStart[v], rowEnd[v]
		tile := int32(v) / ts.size
		start, end := tile*ts.size, (tile+1)*ts.size
		ts.rowLo[v] = lowerBound32(edges, lo, hi, start)
		ts.rowHi[v] = lowerBound32(edges, ts.rowLo[v], hi, end)
		ts.interior[v] = ts.rowLo[v] == lo && ts.rowHi[v] == hi
	}
	return ts
}

// refreshRows re-derives the intra-tile spans and interior flags of
// the given rows after a churn delta changed them. Runs in the slot
// prologue, single-threaded, before any tile sweep reads the spans.
// An added cross-tile edge can demote an interior node to the boundary
// ring, and a removed one promote it back; both directions are exact
// recomputation, so tiled and untiled churned runs stay bit-identical.
func (ts *tileState) refreshRows(rows []int32, rowStart, rowEnd, edges []int32) {
	for _, v := range rows {
		lo, hi := rowStart[v], rowEnd[v]
		tile := v / ts.size
		start, end := tile*ts.size, (tile+1)*ts.size
		ts.rowLo[v] = lowerBound32(edges, lo, hi, start)
		ts.rowHi[v] = lowerBound32(edges, ts.rowLo[v], hi, end)
		ts.interior[v] = ts.rowLo[v] == lo && ts.rowHi[v] == hi
	}
}

// lowerBound32 returns the first index in [lo, hi) whose edge value is
// ≥ bound (rows are sorted ascending).
func lowerBound32(edges []int32, lo, hi, bound int32) int32 {
	for lo < hi {
		mid := lo + (hi-lo)/2
		if edges[mid] < bound {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// segment fills seg with the tile boundaries of the ascending id list:
// seg[k] is the first index whose id belongs to tile ≥ k.
func (ts *tileState) segment(list []int32, seg []int) {
	pos := 0
	seg[0] = 0
	for k := 1; k < ts.tiles; k++ {
		bound := int32(k) * ts.size
		lo, hi := pos, len(list)
		for lo < hi {
			mid := lo + (hi-lo)/2
			if list[mid] < bound {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		pos = lo
		seg[k] = pos
	}
	seg[ts.tiles] = len(list)
}

// stepTiled is the tiled counterpart of Step. Phase structure, seam
// calls and termination logic mirror the untiled loop exactly; only
// the iteration order (tile-major, fused phases) differs, and every
// reordered accumulation is order-free.
func (e *Engine) stepTiled() bool {
	t := e.slot
	ob := e.cfg.Observer
	met := e.cfg.Metrics
	ts := e.ts

	e.wakePhase(t, ob, met)

	// The sweeps walk per-tile segments of the sorted lists, so pending
	// must be sorted every slot it is non-empty. Re-sorting the whole
	// list each slot dominated long wake ramps; instead the sorted
	// prefix length is tracked and only this slot's appended block (one
	// ascending wake run, plus any restart rejoins) is sorted and
	// merged in — O(|pending|) per slot. The list is folded into
	// awakeList under the untiled engine's heuristic, every slot on a
	// traced run (ascending OnTransmit order), or when quiescence
	// compaction rewrites the lists anyway.
	if len(e.pending) > 0 {
		if e.pendingSorted < len(e.pending) {
			suffix := e.pending[e.pendingSorted:]
			if !ascending32(suffix) {
				sortInt32s(suffix)
			}
			if e.pendingSorted > 0 {
				e.pendScratch = append(e.pendScratch[:0], suffix...)
				e.pending = mergeSorted(e.pending[:e.pendingSorted], e.pendScratch)
			}
			e.pendingSorted = len(e.pending)
		}
		if ob != nil || len(e.pending) >= 256 && len(e.pending)*8 >= len(e.awakeList) {
			e.awakeList = mergeSorted(e.awakeList, e.pending)
			e.pending = e.pending[:0]
			e.pendingSorted = 0
		}
	}
	// Quiescence compaction: once a quarter of the awake list is
	// permanently silent, rewrite it without those nodes (silent nodes
	// are never in pending — they quiesced after waking). Amortized
	// O(1) per silenced node; the silent flags stay set (the nodes
	// remain valid listeners for the resolve phase).
	if e.silentCount > 0 && e.silentCount*4 >= len(e.awakeList)+len(e.pending) {
		sil := e.silent
		w := 0
		for _, i := range e.awakeList {
			if !sil[i] {
				e.awakeList[w] = i
				w++
			}
		}
		e.awakeList = e.awakeList[:w]
		e.silentCount = 0
	}

	ts.segment(e.awakeList, ts.aSeg)
	ts.segment(e.pending, ts.pSeg)
	ts.segment(e.undecided, ts.uSeg)

	// Sweep 1: Send + intra-tile resolve + boundary bucketing.
	workers := e.cfg.Workers
	if ob != nil {
		// A traced run keeps both sweeps sequential so event streams
		// stay ordered, exactly like the untiled deliver phase.
		workers = 1
	}
	if workers <= 1 || ts.tiles == 1 {
		for k := 0; k < ts.tiles; k++ {
			e.tileSendResolve(k, t)
		}
	} else {
		e.parallelTiles(workers, t, (*Engine).tileSendResolve)
	}

	// Counter-side transmission bookkeeping (PerNodeTx, message-size
	// max) happened inside sweep 1 on tile-owned state; only the
	// per-event seams need this sequential pass (ascending on the
	// traced path, where pending is always empty).
	if ob != nil || met != nil {
		for k := 0; k < ts.tiles; k++ {
			for _, v := range ts.txs[k] {
				if ob != nil {
					ob.OnTransmit(t, NodeID(v), e.out[v])
				}
				if met != nil {
					met.AddTransmission()
				}
			}
		}
	}

	// Sweep 2: boundary exchange + deliver + decide.
	if workers <= 1 || ts.tiles == 1 {
		for k := 0; k < ts.tiles; k++ {
			e.tileDeliverDecide(k, t)
		}
	} else {
		e.parallelTiles(workers, t, (*Engine).tileDeliverDecide)
	}

	// Fold the per-tile tallies in tile order (sums are order-free).
	for k := 0; k < ts.tiles; k++ {
		tl := &ts.tallies[k]
		e.res.Transmissions += int64(len(ts.txs[k]))
		if tl.maxBits > e.res.MaxMessageBits {
			e.res.MaxMessageBits = tl.maxBits
		}
		e.res.Deliveries += tl.deliveries
		e.res.Captures += tl.captures
		e.res.Collisions += tl.collisions
		e.res.Jammed += tl.jammed
		e.res.Lost += tl.lost
		e.numDone += int(tl.decisions)
		e.silentCount += int(tl.silenced)
		*tl = tileTally{}
	}

	// Squash the per-tile undecided survivors back into one compact
	// list. Tile k's survivors sit at [uSeg[k], uSeg[k]+uLen[k]); the
	// forward copy is safe because the write cursor never passes a
	// tile's own segment start.
	w := ts.uLen[0]
	for k := 1; k < ts.tiles; k++ {
		w += copy(e.undecided[w:], e.undecided[ts.uSeg[k]:ts.uSeg[k]+ts.uLen[k]])
	}
	e.undecided = e.undecided[:w]

	// Transmitter cleanup, identical to the untiled loop. Runs after
	// both sweeps because a remote tile's deliver reads e.out[from]
	// across the tile boundary.
	for k := 0; k < ts.tiles; k++ {
		for _, v := range ts.txs[k] {
			e.out[v] = nil
			e.rs[v].count = 0
		}
	}

	return e.finishSlot(t, ob, met)
}

// parallelTiles runs fn over every tile on the given number of
// goroutines with dynamic (work-stealing) tile assignment: tiles near
// the wake ramp's frontier carry most of the load, so static ranges
// would straggle. Safe because fn only touches tile-owned state.
func (e *Engine) parallelTiles(workers int, t int64, fn func(*Engine, int, int64)) {
	tiles := e.ts.tiles
	if workers > tiles {
		workers = tiles
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				k := int(next.Add(1)) - 1
				if k >= tiles {
					return
				}
				fn(e, k, t)
			}
		}()
	}
	wg.Wait()
}

// tileSendResolve is sweep 1 for tile k: tick the tile's awake nodes,
// resolve each transmitter's intra-tile neighbors against the tile's
// own accumulators, and bucket cross-tile neighbors for sweep 2. It
// writes only tile-k-owned state (the tile's protocols and outboxes,
// rs entries of tile-k nodes, the k-th tx/touched lists and the k-th
// bucket row), so tiles are safe to run concurrently.
func (e *Engine) tileSendResolve(k int, t int64) {
	ts := e.ts
	protos := e.cfg.Protocols
	off := e.off
	sil := e.silent

	tl := &ts.tallies[k]
	nEst := e.cfg.NEstimate
	perNodeTx := e.res.PerNodeTx
	txs := ts.txs[k][:0]
	lists := [2][]int32{
		e.awakeList[ts.aSeg[k]:ts.aSeg[k+1]],
		e.pending[ts.pSeg[k]:ts.pSeg[k+1]],
	}
	for _, ids := range lists {
		for _, i := range ids {
			if off != nil && off[i] {
				continue
			}
			if sil != nil && sil[i] {
				continue // permanently silent (Quiescent): Send would return nil
			}
			if msg := protos[i].Send(t); msg != nil {
				e.out[i] = msg
				e.rs[i].count = txMarker
				txs = append(txs, i)
				// Counter bookkeeping, fused here on tile-owned state;
				// the count sum and max fold after sweep 2, and the
				// OnTransmit/metrics seams run in a sequential pass.
				perNodeTx[i]++
				if bits := msg.Bits(nEst); bits > tl.maxBits {
					tl.maxBits = bits
				}
			}
		}
	}
	ts.txs[k] = txs

	touched := ts.touched[k]
	size := ts.size
	tiles := ts.tiles
	for _, v := range txs {
		lo, hi := e.rowStart[v], e.rowEnd[v]
		rlo, rhi := ts.rowLo[v], ts.rowHi[v]
		for _, u := range e.edges[rlo:rhi] {
			r := &e.rs[u]
			if r.count == 0 {
				r.count = 1
				r.from = v
				touched = append(touched, u)
			} else if r.count > 0 {
				r.count++
				if v < r.from {
					r.from = v
				}
			}
			// count < 0: asleep, crashed, or transmitting — not a
			// listener; the entry is left untouched.
		}
		for _, u := range e.edges[lo:rlo] {
			d := int(u / size)
			ts.cross[k*tiles+d] = append(ts.cross[k*tiles+d], crossRef{to: u, from: v})
		}
		for _, u := range e.edges[rhi:hi] {
			d := int(u / size)
			ts.cross[k*tiles+d] = append(ts.cross[k*tiles+d], crossRef{to: u, from: v})
		}
	}

	// Interior fusion (untraced runs only, to preserve event order for
	// observers): an interior listener's accumulator can never be
	// reached by a boundary bucket, so its receive state is already
	// final — deliver it and poll its decision now, while the tile's
	// accumulators and protocol state are cache-hot from the resolve
	// loop, instead of re-streaming them in sweep 2. Every touched
	// state (rs, protos, sil, decided, DecideSlot, the tile's tally and
	// undecided segment) is tile-owned, so the pass is safe under
	// Workers > 1. Boundary listeners and non-interior undecided nodes
	// are deferred to sweep 2 untouched.
	if e.cfg.Observer == nil {
		met := e.cfg.Metrics
		interior := ts.interior
		w := 0
		for _, u := range touched {
			if interior[u] {
				e.deliverOne(t, u, tl, nil, met, sil, protos)
			} else {
				touched[w] = u
				w++
			}
		}
		touched = touched[:w]

		lo, hi := ts.uSeg[k], ts.uSeg[k+1]
		wr := lo
		for _, i := range e.undecided[lo:hi] {
			if interior[i] && (off == nil || !off[i]) && protos[i].Done() {
				e.decided[i] = true
				tl.decisions++
				e.res.DecideSlot[i] = t
				if met != nil {
					met.AddDecision()
				}
				if sil != nil {
					if q, ok := protos[i].(Quiescent); ok && q.Quiescent() {
						sil[i] = true
						tl.silenced++
					}
				}
			} else {
				e.undecided[wr] = i
				wr++
			}
		}
		ts.uLen1[k] = wr - lo
	} else {
		ts.uLen1[k] = ts.uSeg[k+1] - ts.uSeg[k]
	}
	ts.touched[k] = touched
}

// tileDeliverDecide is sweep 2 for tile k: fold the incoming boundary
// buckets (ascending source tile, though any order would merge to the
// same state — counts add, senders min), deliver to the tile's touched
// listeners, and run decision detection over the tile's undecided
// segment. Again only tile-k-owned state is written.
func (e *Engine) tileDeliverDecide(k int, t int64) {
	ts := e.ts
	tl := &ts.tallies[k]
	ob := e.cfg.Observer // non-nil only on the sequential path
	met := e.cfg.Metrics
	protos := e.cfg.Protocols
	tiles := ts.tiles
	touched := ts.touched[k]

	// Boundary exchange: only cross-tile edges enter this merge.
	for s := 0; s < tiles; s++ {
		bucket := ts.cross[s*tiles+k]
		if len(bucket) == 0 {
			continue
		}
		for _, c := range bucket {
			r := &e.rs[c.to]
			if r.count == 0 {
				r.count = 1
				r.from = c.from
				touched = append(touched, c.to)
			} else if r.count > 0 {
				r.count++
				if c.from < r.from {
					r.from = c.from
				}
			}
		}
		ts.cross[s*tiles+k] = bucket[:0]
	}

	// Deliver: the exactly-one rule plus capture, drop and fault
	// suppression, exactly as in the untiled deliver phase. On untraced
	// runs sweep 1 already delivered the tile's interior listeners, so
	// this walks only the boundary ring plus bucket-fold touches.
	sil := e.silent
	for _, u := range touched {
		e.deliverOne(t, u, tl, ob, met, sil, protos)
	}
	ts.touched[k] = touched[:0]

	// Decide over the tile's remaining undecided segment, compacting
	// survivors in place; the sequential squash in stepTiled stitches
	// the segments. When sweep 1 ran the fused interior pass, interior
	// survivors are carried through without a second Done poll (a
	// protocol must see exactly one poll per slot, like untiled).
	off := e.off
	fused := ob == nil
	interior := ts.interior
	lo := ts.uSeg[k]
	hi := lo + ts.uLen1[k]
	w := lo
	for _, i := range e.undecided[lo:hi] {
		if fused && interior[i] {
			e.undecided[w] = i
			w++
			continue
		}
		if (off == nil || !off[i]) && protos[i].Done() {
			e.decided[i] = true
			tl.decisions++
			e.res.DecideSlot[i] = t
			if ob != nil {
				ob.OnDecide(t, NodeID(i))
			}
			if met != nil {
				met.AddDecision()
			}
			if sil != nil {
				if q, ok := protos[i].(Quiescent); ok && q.Quiescent() {
					sil[i] = true
					tl.silenced++
				}
			}
		} else {
			e.undecided[w] = i
			w++
		}
	}
	ts.uLen[k] = w - lo
}

// deliverOne finishes one touched listener for slot t: read-and-clear
// its accumulator, apply the exactly-one rule with capture, drop and
// fault suppression, and hand a successful delivery to the protocol.
// Shared by sweep 2's deliver loop and sweep 1's fused interior pass;
// ob is nil on the latter (fusion only runs untraced).
func (e *Engine) deliverOne(t int64, u int32, tl *tileTally, ob Observer, met *obs.Metrics, sil []bool, protos []Protocol) {
	r := &e.rs[u]
	count, from := r.count, r.from
	r.count = 0
	if count >= 2 {
		if count == 2 && e.captured(t, u) {
			if e.fs != nil && e.faultSuppressed(t, from, u, &tl.jammed, &tl.lost, met) {
				return
			}
			tl.deliveries++
			tl.captures++
			msg := e.out[from]
			if ob != nil {
				ob.OnDeliver(t, NodeID(u), msg)
			}
			if met != nil {
				met.AddDelivery()
				met.AddCapture()
			}
			if sil == nil || !sil[u] {
				protos[u].Recv(t, msg)
			}
			return
		}
		tl.collisions++
		if ob != nil {
			ob.OnCollision(t, NodeID(u), int(count))
		}
		if met != nil {
			met.AddCollision()
		}
		return
	}
	if e.fs != nil && e.faultSuppressed(t, from, u, &tl.jammed, &tl.lost, met) {
		return
	}
	if e.dropped(t, u) {
		if met != nil {
			met.AddDrop()
		}
		return
	}
	tl.deliveries++
	msg := e.out[from]
	if ob != nil {
		ob.OnDeliver(t, NodeID(u), msg)
	}
	if met != nil {
		met.AddDelivery()
	}
	if sil == nil || !sil[u] {
		// A quiescent node's behavior no longer depends on
		// receptions, so the Recv call is skipped; the delivery
		// itself is counted above exactly as untiled.
		protos[u].Recv(t, msg)
	}
}
