package radiocolor

import (
	"fmt"

	"radiocolor/internal/churn"
)

// ChurnConfig asks a run to change its topology mid-flight: nodes may
// join the network late, leave it (taking their color out of scope),
// rejoin, and move along piecewise-linear waypoint trajectories that
// re-derive their unit-disk neighborhoods as they travel. The schedule
// is declarative and compiles — like FaultConfig — to a deterministic
// plan applied at slot boundaries, so two runs with equal options see
// identical topology histories at any Workers or Tiling setting. The
// engine's hot loop pays one nil check per phase when Churn is unset,
// and the output is then bit-identical to a static run.
//
// Every node a join or repair may restart must run a resettable
// protocol (the built-in coloring protocol is); mobility needs node
// positions, so Waypoints are only accepted through the geometric
// entry points (ColorUnitDisk and friends). Churn cannot combine with
// a pluggable Medium (media bind to a static graph) or with clock-skew
// fault profiles (the half-slot engine has no churn seam), and churn
// subjects must be disjoint from fault crash/restart victims.
type ChurnConfig struct {
	// Joins and Leaves schedule presence changes. A node whose first
	// event is a join is absent from slot 0; per node, joins and leaves
	// must alternate in slot order.
	Joins, Leaves []ChurnEvent
	// Waypoints schedule mobility (geometric entry points only).
	Waypoints []ChurnWaypoint
	// Every is the mobility evaluation cadence in slots (default 16).
	Every int64
	// Repair selects the conflict-repair mode: "retract" (default; a
	// conflicted decided node retracts and re-contends) or "none".
	Repair string
	// Seed is reserved for stochastic churn models; the current
	// schedules compile to pure functions of their events.
	Seed int64
}

// ChurnEvent schedules one presence change at the start of slot At.
type ChurnEvent struct {
	Node int
	At   int64
}

// ChurnWaypoint sends Node moving linearly to (X, Y), arriving at slot
// At. Multiple waypoints per node chain in slot order.
type ChurnWaypoint struct {
	Node int
	At   int64
	X, Y float64
}

// ParseChurn parses the compact schedule syntax shared by
// cmd/colorsim -churn and the serve job API, e.g.
// "join=12@200,leave=3@500,move=7@1000:2.5:3.5,every=32,repair=retract".
// An empty string yields nil (no churn).
func ParseChurn(s string) (*ChurnConfig, error) {
	sch, err := churn.ParseSchedule(s)
	if err != nil {
		return nil, fmt.Errorf("radiocolor: %w", err)
	}
	if !sch.Active() {
		return nil, nil
	}
	c := &ChurnConfig{Every: sch.Every, Seed: sch.Seed}
	if sch.Repair != churn.RepairRetract {
		c.Repair = sch.Repair.String()
	}
	for _, e := range sch.Joins {
		c.Joins = append(c.Joins, ChurnEvent{Node: e.Node, At: e.At})
	}
	for _, e := range sch.Leaves {
		c.Leaves = append(c.Leaves, ChurnEvent{Node: e.Node, At: e.At})
	}
	for _, w := range sch.Waypoints {
		c.Waypoints = append(c.Waypoints, ChurnWaypoint{Node: w.Node, At: w.At, X: w.X, Y: w.Y})
	}
	return c, nil
}

// String renders the config in ParseChurn's syntax.
func (c *ChurnConfig) String() string {
	sch, err := c.schedule()
	if err != nil {
		return fmt.Sprintf("invalid churn config: %v", err)
	}
	return sch.String()
}

// schedule converts to the internal representation.
func (c *ChurnConfig) schedule() (*churn.Schedule, error) {
	if c == nil {
		return nil, nil
	}
	s := &churn.Schedule{Seed: c.Seed, Every: c.Every}
	if c.Repair != "" {
		mode, err := churn.ParseRepairMode(c.Repair)
		if err != nil {
			return nil, fmt.Errorf("radiocolor: %w", err)
		}
		s.Repair = mode
	}
	for _, e := range c.Joins {
		s.Joins = append(s.Joins, churn.Event{Node: e.Node, At: e.At})
	}
	for _, e := range c.Leaves {
		s.Leaves = append(s.Leaves, churn.Event{Node: e.Node, At: e.At})
	}
	for _, w := range c.Waypoints {
		s.Waypoints = append(s.Waypoints, churn.Waypoint{Node: w.Node, At: w.At, X: w.X, Y: w.Y})
	}
	return s, nil
}

// active reports whether the config changes anything at all.
func (c *ChurnConfig) active() bool {
	return c != nil && (len(c.Joins) > 0 || len(c.Leaves) > 0 || len(c.Waypoints) > 0)
}

// ChurnOutcome reports what the dynamic-topology layer did to a run
// and the proper-coloring verdict over the nodes still present.
type ChurnOutcome struct {
	// Joins and Leaves count presence changes applied; a node that
	// leaves and rejoins counts once in each. ConflictsRepaired counts
	// decisions retracted because a topology change created a
	// monochromatic edge.
	Joins, Leaves, ConflictsRepaired int64
	// Left lists the nodes absent at the end of the run; their colors
	// went out of scope with them.
	Left []int
	// Present counts the nodes still in the network (and not crashed);
	// PresentColored those holding a color; Degraded the
	// present-but-uncolored remainder.
	Present, PresentColored, Degraded int
	// HardViolations counts edges between two present live nodes
	// sharing a color; Graceful is true when there are none. Departed
	// or crashed nodes are the accepted cost of the dynamics, a
	// present-present conflict never is.
	HardViolations int
	Graceful       bool
}
