package churn

import (
	"reflect"
	"strings"
	"testing"

	"radiocolor/internal/geom"
	"radiocolor/internal/graph"
)

// path builds the path graph 0-1-2-...-(n-1).
func path(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for v := 0; v+1 < n; v++ {
		b.AddEdge(v, v+1)
	}
	return b.Build()
}

func TestValidateAlternation(t *testing.T) {
	cases := []struct {
		name string
		s    Schedule
		ok   bool
	}{
		{"empty", Schedule{}, true},
		{"leave then join", Schedule{Leaves: []Event{{1, 10}}, Joins: []Event{{1, 20}}}, true},
		{"join then leave", Schedule{Joins: []Event{{1, 10}}, Leaves: []Event{{1, 20}}}, true},
		{"double leave", Schedule{Leaves: []Event{{1, 10}, {1, 20}}}, false},
		{"double join", Schedule{Joins: []Event{{1, 10}, {1, 20}}}, false},
		{"same slot", Schedule{Leaves: []Event{{1, 10}}, Joins: []Event{{1, 10}}}, false},
		{"negative slot", Schedule{Leaves: []Event{{1, -1}}}, false},
		{"negative node", Schedule{Leaves: []Event{{-1, 5}}}, false},
		{"waypoints out of order", Schedule{Waypoints: []Waypoint{{1, 20, 0, 0}, {1, 10, 1, 1}}}, false},
	}
	for _, tc := range cases {
		err := tc.s.Validate(100)
		if (err == nil) != tc.ok {
			t.Errorf("%s: Validate = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

func TestCompileLeaveRemovesEdges(t *testing.T) {
	g := path(4) // 0-1-2-3
	s := &Schedule{Leaves: []Event{{Node: 1, At: 50}}}
	p, err := s.Compile(Env{G: g})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Batches) != 1 || p.Batches[0].Slot != 50 {
		t.Fatalf("want one batch at slot 50, got %+v", p.Batches)
	}
	b := p.Batches[0]
	if len(b.Leaves) != 1 || b.Leaves[0].Node != 1 || !b.Leaves[0].Final {
		t.Fatalf("want final leave of node 1, got %+v", b.Leaves)
	}
	wantDels := [][2]int32{{0, 1}, {1, 2}}
	if !reflect.DeepEqual(b.Delta.Dels, wantDels) {
		t.Fatalf("dels %v, want %v", b.Delta.Dels, wantDels)
	}
	if len(p.InitialAbsent) != 0 {
		t.Fatalf("nobody should be initially absent: %v", p.InitialAbsent)
	}
}

func TestCompileLateJoinInitiallyAbsent(t *testing.T) {
	g := path(4)
	s := &Schedule{Joins: []Event{{Node: 2, At: 100}}}
	p, err := s.Compile(Env{G: g})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p.InitialAbsent, []int32{2}) {
		t.Fatalf("InitialAbsent %v, want [2]", p.InitialAbsent)
	}
	wantInit := [][2]int32{{1, 2}, {2, 3}}
	if !reflect.DeepEqual(p.InitialDelta.Dels, wantInit) {
		t.Fatalf("initial dels %v, want %v", p.InitialDelta.Dels, wantInit)
	}
	b := p.Batches[0]
	if b.Slot != 100 || !reflect.DeepEqual(b.Joins, []int32{2}) {
		t.Fatalf("want join of 2 at 100, got %+v", b)
	}
	if !reflect.DeepEqual(b.Delta.Adds, wantInit) {
		t.Fatalf("join adds %v, want %v", b.Delta.Adds, wantInit)
	}
}

func TestCompileRejoinSkipsAbsentNeighbors(t *testing.T) {
	g := path(3) // 0-1-2
	s := &Schedule{
		Leaves: []Event{{Node: 0, At: 10}, {Node: 1, At: 20}},
		Joins:  []Event{{Node: 1, At: 30}},
	}
	p, err := s.Compile(Env{G: g})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Batches) != 3 {
		t.Fatalf("want 3 batches, got %d", len(p.Batches))
	}
	// Node 1 rejoins at 30 while 0 is still gone: only edge (1,2) returns.
	b := p.Batches[2]
	if !reflect.DeepEqual(b.Delta.Adds, [][2]int32{{1, 2}}) {
		t.Fatalf("rejoin adds %v, want [[1 2]]", b.Delta.Adds)
	}
	// Node 1's leave at 20 is not final (it rejoins); node 0's is.
	if p.Batches[0].Leaves[0].Final != true {
		t.Fatal("node 0's leave should be final")
	}
	if p.Batches[1].Leaves[0].Final != false {
		t.Fatal("node 1's leave should not be final (it rejoins)")
	}
}

func TestCompileMobilityRewiresEdges(t *testing.T) {
	// Three collinear nodes at distance 1; radius 1.2 connects only
	// adjacent pairs. Node 2 moves next to node 0, so the edge set
	// flips from {0-1, 1-2} to {0-1, 0-2, 1-2}? No: after the move,
	// node 2 sits at (0.5, 0.5): distance to 0 ≈ 0.71 (in range),
	// to 1 ≈ 0.71 (in range) — both edges present.
	pts := []geom.Point{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 2, Y: 0}}
	b := graph.NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	g := b.Build()
	s := &Schedule{
		Waypoints: []Waypoint{{Node: 2, At: 64, X: 0.5, Y: 0.5}},
		Every:     64,
	}
	p, err := s.Compile(Env{G: g, Points: pts, Radius: 1.2})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Batches) == 0 {
		t.Fatal("mobility produced no batches")
	}
	last := p.Batches[len(p.Batches)-1]
	var sawAdd bool
	for _, e := range last.Delta.Adds {
		if e == [2]int32{0, 2} {
			sawAdd = true
		}
	}
	// Across all batches the final edge set must contain (0,2).
	if !sawAdd {
		// The add may have landed in an earlier eval tick; replay the
		// deltas to check the final edge set instead.
		d := graph.NewDyn(g)
		d.Apply(p.InitialDelta, nil)
		for _, bt := range p.Batches {
			d.Apply(bt.Delta, nil)
		}
		if !d.Has(0, 2) {
			t.Fatal("edge (0,2) missing after mobility")
		}
	}
}

func TestCompileMobilityNeedsGeometry(t *testing.T) {
	s := &Schedule{Waypoints: []Waypoint{{Node: 0, At: 10, X: 1, Y: 1}}}
	if _, err := s.Compile(Env{G: path(3)}); err == nil {
		t.Fatal("waypoints without points should fail to compile")
	}
}

func TestCompileInactive(t *testing.T) {
	p, err := (&Schedule{}).Compile(Env{G: path(3)})
	if err != nil || p != nil {
		t.Fatalf("inactive schedule: plan %v err %v", p, err)
	}
}

func TestPermuteMovesNodes(t *testing.T) {
	s := &Schedule{
		Joins:     []Event{{Node: 0, At: 5}},
		Leaves:    []Event{{Node: 1, At: 2}},
		Waypoints: []Waypoint{{Node: 2, At: 9, X: 1, Y: 2}},
	}
	forward := []int32{2, 0, 1}
	m := s.Permute(forward)
	if m.Joins[0].Node != 2 || m.Leaves[0].Node != 0 || m.Waypoints[0].Node != 1 {
		t.Fatalf("permute wrong: %+v", m)
	}
	// Original untouched.
	if s.Joins[0].Node != 0 {
		t.Fatal("permute mutated the original")
	}
}

func TestParseRoundTrip(t *testing.T) {
	cases := []string{
		"",
		"leave=3@500",
		"join=12@200,leave=12@900",
		"join=1@5,leave=2@3,move=7@1000:2.5:3.5,move=7@2000:0:0,every=32,repair=none,seed=9",
	}
	for _, src := range cases {
		s, err := ParseSchedule(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		rendered := s.String()
		s2, err := ParseSchedule(rendered)
		if err != nil {
			t.Fatalf("reparse %q: %v", rendered, err)
		}
		if !reflect.DeepEqual(s, s2) {
			t.Fatalf("round trip %q -> %q: %+v vs %+v", src, rendered, s, s2)
		}
	}
}

func TestParseRejects(t *testing.T) {
	cases := []string{
		"bogus=1",
		"join=1",
		"join=@5",
		"leave=1@x",
		"move=1@5:1",
		"move=1@5:NaN:2",
		"repair=fix",
		"every=x",
		"leave=1@5,leave=1@9", // consecutive leaves
	}
	for _, src := range cases {
		if _, err := ParseSchedule(src); err == nil {
			t.Errorf("ParseSchedule(%q) should fail", src)
		}
	}
}

func TestParseErrorsNameTheTerm(t *testing.T) {
	_, err := ParseSchedule("join=1@5,move=2@7:bad:0")
	if err == nil || !strings.Contains(err.Error(), "move=2@7:bad:0") {
		t.Fatalf("error should quote the offending term: %v", err)
	}
}
