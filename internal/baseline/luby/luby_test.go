package luby

import (
	"math/rand"
	"testing"

	"radiocolor/internal/graph"
	"radiocolor/internal/msgpass"
	"radiocolor/internal/topology"
	"radiocolor/internal/verify"
)

func colorsOf(nodes []*Node) []int32 {
	out := make([]int32, len(nodes))
	for i, v := range nodes {
		out[i] = v.Color()
	}
	return out
}

func runOn(t *testing.T, g *graph.Graph, seed int64) ([]*Node, *msgpass.Result) {
	t.Helper()
	delta := g.MaxDegree()
	nodes, protos := Nodes(g.N(), delta, seed)
	res, err := msgpass.Run(g, protos, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	return nodes, res
}

func TestLubyColorsPath(t *testing.T) {
	b := graph.NewBuilder(10)
	for i := 0; i < 9; i++ {
		b.AddEdge(i, i+1)
	}
	g := b.Build()
	nodes, res := runOn(t, g, 1)
	if !res.AllDone {
		t.Fatalf("did not terminate: %+v", res)
	}
	rep := verify.Check(g, colorsOf(nodes))
	if !rep.OK() {
		t.Fatalf("bad coloring: %v", rep)
	}
	if rep.MaxColor > int32(g.MaxDegree()) {
		t.Errorf("max color %d exceeds Δ = %d", rep.MaxColor, g.MaxDegree())
	}
}

func TestLubyColorsRandomUDG(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		d := topology.RandomUDG(topology.UDGConfig{N: 150, Side: 6, Radius: 1.2, Seed: seed})
		nodes, res := runOn(t, d.G, seed+10)
		if !res.AllDone {
			t.Fatalf("seed %d: did not terminate", seed)
		}
		rep := verify.Check(d.G, colorsOf(nodes))
		if !rep.OK() {
			t.Fatalf("seed %d: bad coloring: %v", seed, rep)
		}
		// (Δ+1) colors maximum.
		if rep.MaxColor > int32(d.G.MaxDegree()) {
			t.Errorf("seed %d: max color %d > Δ %d", seed, rep.MaxColor, d.G.MaxDegree())
		}
	}
}

func TestLubyCliqueUsesAllColors(t *testing.T) {
	d := topology.Clique(12)
	nodes, res := runOn(t, d.G, 3)
	if !res.AllDone {
		t.Fatal("clique did not terminate")
	}
	rep := verify.Check(d.G, colorsOf(nodes))
	if !rep.OK() || rep.NumColors != 12 {
		t.Fatalf("clique coloring: %v", rep)
	}
}

func TestLubyFastOnLargeNetworks(t *testing.T) {
	// O(log n) rounds: even 500 nodes finish within a generous bound.
	d := topology.RandomUDG(topology.UDGConfig{N: 500, Side: 10, Radius: 1.2, Seed: 9})
	_, res := runOn(t, d.G, 4)
	if !res.AllDone {
		t.Fatal("did not terminate")
	}
	if res.Rounds > 200 {
		t.Errorf("rounds = %d, expected O(log n) ≪ 200", res.Rounds)
	}
}

func TestLubyDeterministic(t *testing.T) {
	d := topology.RandomUDG(topology.UDGConfig{N: 80, Side: 5, Radius: 1.2, Seed: 2})
	a, _ := runOn(t, d.G, 7)
	b, _ := runOn(t, d.G, 7)
	for i := range a {
		if a[i].Color() != b[i].Color() {
			t.Fatalf("node %d differs across identical runs", i)
		}
	}
}

func TestLubyIsolatedVertex(t *testing.T) {
	g := graph.NewBuilder(1).Build()
	nodes, res := runOn(t, g, 5)
	if !res.AllDone || nodes[0].Color() < 0 {
		t.Fatal("isolated vertex not colored")
	}
}

func TestNodePaletteExhaustionGuard(t *testing.T) {
	// Force the degenerate guard: empty palette returns nil and the node
	// never terminates (rather than panicking).
	v := New(0, rand.New(rand.NewSource(1)))
	v.palette = nil
	if out := v.Round(0, nil); out != nil {
		t.Error("empty palette should broadcast nothing")
	}
	if v.Done() {
		t.Error("node with empty palette cannot decide")
	}
}

func TestRemoveFromPalette(t *testing.T) {
	v := New(4, rand.New(rand.NewSource(1)))
	v.removeFromPalette(2)
	v.removeFromPalette(2) // idempotent
	v.removeFromPalette(99)
	want := []int32{0, 1, 3, 4}
	if len(v.palette) != len(want) {
		t.Fatalf("palette = %v", v.palette)
	}
	for i := range want {
		if v.palette[i] != want[i] {
			t.Fatalf("palette = %v", v.palette)
		}
	}
}
