package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"radiocolor"
	"radiocolor/internal/obs"
	"radiocolor/internal/store"
)

// openReplica builds a Server on its own *store.File handle over a
// shared directory — one in-process stand-in for one colord replica.
// The flock is per file handle, so two handles in one process exclude
// each other exactly as two processes would.
func openReplica(t *testing.T, dir string, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	fs, err := store.OpenFile(dir, store.FileOptions{Control: cfg.Control})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Store = fs
	s := New(cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
		fs.Close()
	})
	return s, ts
}

// TestTwoReplicasShareBacklog is the serve-level replication contract:
// two Servers on one store directory chew through a 50-job backlog
// with every job executed exactly once — the lease machinery, not
// luck, prevents double-runs even though both replicas poll the same
// records aggressively.
func TestTwoReplicasShareBacklog(t *testing.T) {
	dir := t.TempDir()
	var mu sync.Mutex
	execs := make(map[string]int)
	hook := func(ctx context.Context, j *job) (*radiocolor.Outcome, error) {
		mu.Lock()
		execs[j.id]++
		mu.Unlock()
		time.Sleep(2 * time.Millisecond)
		return fakeOutcome(), nil
	}
	ctrlA, ctrlB := obs.NewControl(), obs.NewControl()
	base := Config{
		Workers:       2,
		QueueCap:      64,
		LeaseTTL:      5 * time.Second,
		ClaimInterval: 10 * time.Millisecond,
		run:           hook,
	}
	cfgA := base
	cfgA.Replica, cfgA.Control = "replica-a", ctrlA
	cfgB := base
	cfgB.Replica, cfgB.Control = "replica-b", ctrlB
	a, tsA := openReplica(t, dir, cfgA)
	b, _ := openReplica(t, dir, cfgB)

	const jobs = 50
	ids := make([]string, 0, jobs)
	for i := 0; i < jobs; i++ {
		resp, st := submit(t, tsA, JobRequest{Adjacency: ringAdjacency(4), Seed: int64(i)})
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("job %d: status %d", i, resp.StatusCode)
		}
		ids = append(ids, st.ID)
	}
	for _, id := range ids {
		if st := waitTerminal(t, tsA, id); st.State != StateDone {
			t.Fatalf("job %s ended %s", id, st.State)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	total := 0
	for id, n := range execs {
		total += n
		if n != 1 {
			t.Errorf("job %s executed %d times", id, n)
		}
	}
	if total != jobs {
		t.Fatalf("executed %d runs for %d jobs", total, jobs)
	}
	// Both replicas actually participated.
	if ctrlA.Snapshot().Claims == 0 || ctrlB.Snapshot().Claims == 0 {
		t.Fatalf("lopsided fleet: a=%d b=%d claims", ctrlA.Snapshot().Claims, ctrlB.Snapshot().Claims)
	}
	_, _ = a, b
}

// TestBootResumeCompletesBacklog is the restart-survival contract: a
// store directory holding queued jobs and a running job whose owner
// crashed (expired lease) is fully drained by a freshly booted Server,
// preserving job ids — the claim loop IS the recovery path.
func TestBootResumeCompletesBacklog(t *testing.T) {
	dir := t.TempDir()
	seed, err := store.OpenFile(dir, store.FileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	spec, _ := json.Marshal(JobRequest{Adjacency: ringAdjacency(6), Seed: 7})
	var ids []string
	for i := 0; i < 3; i++ {
		rec := &store.Job{Kind: store.KindJob, Spec: spec, Submitted: time.Now()}
		if err := seed.Create(rec); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, rec.ID)
	}
	// Simulate a replica that died mid-job: claim with a lease that is
	// already long expired by the time the new server boots.
	if _, err := seed.Claim("dead-replica", time.Now().Add(-time.Hour), time.Minute); err != nil {
		t.Fatal(err)
	}
	seed.Close()

	_, ts := openReplica(t, dir, Config{Workers: 2, ClaimInterval: 10 * time.Millisecond, LeaseTTL: 5 * time.Second})
	for _, id := range ids {
		st := waitTerminal(t, ts, id)
		if st.State != StateDone || st.Outcome == nil {
			t.Fatalf("resumed job %s: state %s, outcome %v", id, st.State, st.Outcome)
		}
	}
	// The crashed job carries its reclaim history.
	if st := getStatus(t, ts, ids[0]); st.Attempts != 2 {
		t.Fatalf("reclaimed job attempts = %d, want 2", st.Attempts)
	}
}

// TestDurableShutdownReleasesInflight: a drain deadline on a durable
// store must not cancel interrupted jobs — they go back to queued for
// the next boot, and the next boot completes them under the same ids.
func TestDurableShutdownReleasesInflight(t *testing.T) {
	dir := t.TempDir()
	fs, err := store.OpenFile(dir, store.FileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	gate := make(chan struct{})
	s := New(Config{
		Store:         fs,
		Workers:       1,
		ClaimInterval: 10 * time.Millisecond,
		run: func(ctx context.Context, j *job) (*radiocolor.Outcome, error) {
			close(gate)
			<-ctx.Done()
			return nil, ctx.Err()
		},
	})
	ts := httptest.NewServer(s)
	_, st := submit(t, ts, JobRequest{Adjacency: ringAdjacency(4)})
	<-gate // the worker is inside the job

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); err != context.DeadlineExceeded {
		t.Fatalf("shutdown err = %v", err)
	}
	ts.Close()
	rec, err := fs.Get(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if rec.State != store.StateQueued {
		t.Fatalf("interrupted durable job state %s, want queued", rec.State)
	}
	fs.Close()

	// Reboot on the same directory: the job completes under its old id.
	_, ts2 := openReplica(t, dir, Config{Workers: 1, ClaimInterval: 10 * time.Millisecond})
	if got := waitTerminal(t, ts2, st.ID); got.State != StateDone {
		t.Fatalf("rebooted job ended %s", got.State)
	}
}

// TestConcurrentSubmitAtFullQueue is the issue's admission-race
// satellite: many goroutines hammering POST /v1/jobs against a full
// queue must each get either 202 with a fresh unique id or 429 with a
// Retry-After header — never a hang, never a duplicate id. Run under
// -race in CI.
func TestConcurrentSubmitAtFullQueue(t *testing.T) {
	gate := make(chan struct{})
	_, ts := newTestServer(t, Config{
		Workers:  2,
		QueueCap: 8,
		run: func(ctx context.Context, j *job) (*radiocolor.Outcome, error) {
			select {
			case <-gate:
				return fakeOutcome(), nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		},
	})
	defer close(gate)

	const clients = 64
	type reply struct {
		code       int
		id         string
		retryAfter string
	}
	replies := make(chan reply, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, st := submit(t, ts, JobRequest{Adjacency: ringAdjacency(4), Seed: int64(i)})
			replies <- reply{code: resp.StatusCode, id: st.ID, retryAfter: resp.Header.Get("Retry-After")}
		}(i)
	}
	wg.Wait()
	close(replies)

	seen := make(map[string]bool)
	accepted, rejected := 0, 0
	for r := range replies {
		switch r.code {
		case http.StatusAccepted:
			accepted++
			if r.id == "" || seen[r.id] {
				t.Fatalf("duplicate or empty id %q", r.id)
			}
			seen[r.id] = true
		case http.StatusTooManyRequests:
			rejected++
			if r.retryAfter == "" {
				t.Fatal("429 without Retry-After")
			}
		default:
			t.Fatalf("unexpected status %d", r.code)
		}
	}
	if accepted+rejected != clients {
		t.Fatalf("accepted %d + rejected %d != %d", accepted, rejected, clients)
	}
	// The backlog bound held: at most QueueCap queued plus the jobs the
	// two workers had already claimed.
	if accepted < 8 || accepted > 10 {
		t.Fatalf("accepted %d, want within [8, 10]", accepted)
	}
}
