package medium

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Medium kind names, the first token of the compact spec syntax.
const (
	KindGraph        = "graph"
	KindSINR         = "sinr"
	KindMultiChannel = "multichannel"
)

// Spec is the parsed, serializable form of a medium selection — the
// value behind cmd/colorsim's -medium flag, the public
// radiocolor.MediumConfig, and the colord job "medium" field.
type Spec struct {
	// Kind selects the model: "graph", "sinr" or "multichannel".
	// Empty means "graph".
	Kind string
	// Alpha, Beta, NoiseDBM and PowerDBM parameterize the SINR model;
	// zero values take the DefaultSINR defaults (note 0 dBm noise is
	// expressed as the default −90; pick any non-zero level otherwise).
	Alpha, Beta        float64
	NoiseDBM, PowerDBM float64
	// Channels and HopSeed parameterize the multichannel model; zero
	// values mean 2 channels hopping on the run seed.
	Channels int
	HopSeed  int64
}

// ParseSpec parses the compact medium syntax shared by
// cmd/colorsim -medium, radiocolor.ParseMedium and the serve job API:
//
//	spec  := kind (',' key '=' value)*
//	kind  := "graph" | "sinr" | "multichannel"
//	keys  (sinr)         : alpha, beta, noise, power   (noise/power in dBm)
//	keys  (multichannel) : k | channels, hopseed
//
// Examples:
//
//	graph
//	sinr,alpha=4,beta=1.5,noise=-90
//	multichannel,k=4,hopseed=21
//
// An empty string parses to nil (the engine's built-in default, which
// is the graph rule on the fast path).
func ParseSpec(s string) (*Spec, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	terms := strings.Split(s, ",")
	kind := strings.TrimSpace(terms[0])
	if strings.Contains(kind, "=") {
		return nil, fmt.Errorf("medium: spec %q must start with a kind (graph, sinr, or multichannel)", s)
	}
	sp := &Spec{Kind: kind}
	switch kind {
	case KindGraph, KindSINR, KindMultiChannel:
	default:
		return nil, fmt.Errorf("medium: unknown kind %q (want graph, sinr, or multichannel)", kind)
	}
	for _, term := range terms[1:] {
		term = strings.TrimSpace(term)
		key, val, ok := strings.Cut(term, "=")
		if !ok || val == "" {
			return nil, fmt.Errorf("medium: term %q is not key=value", term)
		}
		var err error
		switch {
		case kind == KindSINR && key == "alpha":
			sp.Alpha, err = parseFinite(val)
		case kind == KindSINR && key == "beta":
			sp.Beta, err = parseFinite(val)
		case kind == KindSINR && key == "noise":
			sp.NoiseDBM, err = parseFinite(val)
		case kind == KindSINR && key == "power":
			sp.PowerDBM, err = parseFinite(val)
		case kind == KindMultiChannel && (key == "k" || key == "channels"):
			sp.Channels, err = strconv.Atoi(val)
			if err == nil && sp.Channels < 1 {
				// An explicit 0 must not silently normalize to the
				// default channel count.
				err = fmt.Errorf("%d channels", sp.Channels)
			}
		case kind == KindMultiChannel && key == "hopseed":
			sp.HopSeed, err = strconv.ParseInt(val, 10, 64)
		default:
			return nil, fmt.Errorf("medium: kind %q does not take %q", kind, key)
		}
		if err != nil {
			return nil, fmt.Errorf("medium: term %q: %w", term, err)
		}
	}
	*sp = sp.Normalized()
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	return sp, nil
}

// parseFinite parses a float and rejects NaN/Inf, which would silently
// poison the power arithmetic.
func parseFinite(s string) (float64, error) {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("value %q is not finite", s)
	}
	return v, nil
}

// Normalized fills the defaults: empty kind is graph, zero SINR
// parameters take DefaultSINR (a 0 dBm noise floor is expressed as the
// −90 default), zero Channels means 2.
func (s Spec) Normalized() Spec {
	if s.Kind == "" {
		s.Kind = KindGraph
	}
	if s.Kind == KindSINR {
		def := DefaultSINR()
		if s.Alpha == 0 {
			s.Alpha = def.Alpha
		}
		if s.Beta == 0 {
			s.Beta = def.Beta
		}
		if s.NoiseDBM == 0 {
			s.NoiseDBM = def.NoiseDBM
		}
	}
	if s.Kind == KindMultiChannel && s.Channels == 0 {
		s.Channels = 2
	}
	return s
}

// Validate reports whether the (normalized) spec is well-formed.
func (s Spec) Validate() error {
	n := s.Normalized()
	switch n.Kind {
	case KindGraph:
	case KindSINR:
		if n.Alpha <= 0 || n.Alpha > 10 {
			return fmt.Errorf("medium: path-loss exponent alpha=%g outside (0, 10]", n.Alpha)
		}
		if n.Beta <= 0 {
			return fmt.Errorf("medium: non-positive SINR threshold beta=%g", n.Beta)
		}
	case KindMultiChannel:
		if n.Channels < 1 || n.Channels > 1<<20 {
			return fmt.Errorf("medium: %d channels outside [1, 2^20]", n.Channels)
		}
	default:
		return fmt.Errorf("medium: unknown kind %q (want graph, sinr, or multichannel)", n.Kind)
	}
	return nil
}

// Build converts the spec into its Medium.
func (s Spec) Build() (Medium, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	n := s.Normalized()
	switch n.Kind {
	case KindSINR:
		return SINR{Alpha: n.Alpha, Beta: n.Beta, NoiseDBM: n.NoiseDBM, PowerDBM: n.PowerDBM}, nil
	case KindMultiChannel:
		return MultiChannel{K: n.Channels, HopSeed: n.HopSeed}, nil
	default:
		return GraphThreshold{}, nil
	}
}

// String renders the spec back in ParseSpec's syntax;
// ParseSpec(s.String()) reproduces the normalized spec.
func (s Spec) String() string {
	n := s.Normalized()
	switch n.Kind {
	case KindSINR:
		str := fmt.Sprintf("sinr,alpha=%g,beta=%g,noise=%g", n.Alpha, n.Beta, n.NoiseDBM)
		if n.PowerDBM != 0 {
			str += fmt.Sprintf(",power=%g", n.PowerDBM)
		}
		return str
	case KindMultiChannel:
		str := fmt.Sprintf("multichannel,k=%d", n.Channels)
		if n.HopSeed != 0 {
			str += fmt.Sprintf(",hopseed=%d", n.HopSeed)
		}
		return str
	default:
		return KindGraph
	}
}
