package radio

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"radiocolor/internal/churn"
	"radiocolor/internal/fault"
	"radiocolor/internal/graph"
	"radiocolor/internal/medium"
	"radiocolor/internal/obs"
)

// Config describes one simulation run.
type Config struct {
	// G is the communication graph (required).
	G *graph.Graph
	// Protocols holds one Protocol per node (required, len == G.N()).
	Protocols []Protocol
	// Wake holds each node's wake-up slot (required, len == G.N(),
	// non-negative). Generate with the schedules in wakeup.go.
	Wake []int64
	// MaxSlots aborts the run after this many slots (default 50M).
	MaxSlots int64
	// Observer receives trace events. nil (the default) disables the
	// seam entirely: the engines branch on nil per event and allocate
	// nothing. Combine several observers with Observers. A non-nil
	// Observer also keeps the deliver phase sequential under Workers > 1
	// so that traced event streams stay fully ordered.
	Observer Observer
	// Metrics, when non-nil, receives atomic event counters (see
	// internal/obs). Like Observer, nil costs one branch per event.
	// Metrics is independent of Observer so a shared registry can
	// aggregate across concurrent runs without any fan-out indirection.
	// Being atomic, Metrics does not force the sequential deliver path.
	Metrics *obs.Metrics
	// NEstimate is the network-size estimate used for message-size
	// accounting (default G.N()).
	NEstimate int
	// DropProb injects message loss beyond the model: each successful
	// delivery is independently suppressed with this probability.
	// Deliveries suppressed this way are indistinguishable from
	// collisions to the receiver. Used by failure-injection tests.
	DropProb float64
	// DropSeed seeds the deterministic drop and capture coins.
	DropSeed int64
	// CaptureProb models the capture effect, a deviation ABOVE the
	// model: when exactly two neighbors transmit simultaneously, the
	// stronger signal (deterministically, the lower-indexed transmitter)
	// is still decoded with this probability instead of being lost to
	// the collision. Real radios often exhibit capture; the model
	// assumes none. Used by robustness experiments.
	CaptureProb float64
	// Faults, when non-nil, threads the deterministic fault-injection
	// layer through the slot loop: per-link loss and jamming suppress
	// receptions, crash/restart events fail-stop nodes (see
	// internal/fault). nil (the default) disables the seam entirely —
	// the hot path pays one nil check per phase and the output is
	// bit-identical to a fault-free engine. Compile the injector for
	// exactly G.N() nodes; profiles with clock skew must run through
	// RunUnaligned, and profiles that schedule restarts require the
	// victims' protocols to implement Restartable.
	Faults *fault.Injector
	// Medium, when non-nil, replaces the built-in reception rule (a
	// listener decodes iff exactly one graph neighbor transmits) with a
	// pluggable physical model — SINR with cumulative interference,
	// multi-channel hopping, or any other medium.Instance bound for
	// exactly G.N() nodes (see internal/medium). nil keeps the seam
	// entirely off the hot path: one check per slot, output bit-identical
	// to the pre-seam kernel. On the medium path CaptureProb is ignored
	// (capture is the medium's own semantics), per-listener OnCollision
	// events are not emitted (collisions are counted in aggregate), and
	// fault suppression (jam, loss) applies per reception after the
	// medium resolves, exactly as on the built-in path.
	Medium medium.Instance
	// Churn, when non-nil, threads the dynamic-topology layer through
	// the slot loop: a compiled churn.Plan's batches of node joins,
	// leaves and mobility-derived edge deltas apply incrementally to a
	// dynamic CSR at the start of their slot, before fault events and
	// wake-ups (see internal/churn). nil (the default) disables the
	// seam entirely — the hot path pays one nil check per phase and the
	// output is bit-identical to the static engine. Batches apply
	// single-threaded, so churned runs are bit-identical at any Workers
	// and Tiles setting. Compile the plan for exactly G.N() nodes;
	// churn cannot be combined with a pluggable Medium or with
	// RunUnaligned, joining nodes' protocols must implement Restartable,
	// retraction repair additionally needs Colored, and a node cannot be
	// both a fault crash/restart victim and a churn subject.
	Churn *churn.Plan
	// Workers > 1 runs the per-slot Send, resolve and deliver phases on
	// that many goroutines. Results are bit-identical to the sequential
	// engine: every node owns an independent random stream, the resolve
	// phase partitions the transmitters' CSR edge ranges and merges the
	// per-worker (count, lowest sender) accumulators deterministically
	// (sum and min are order-free), and the deliver phase partitions
	// receivers, which never share protocol state.
	Workers int
	// Tiles > 1 runs the cache-aware tiled slot loop (tiled.go): node
	// ids are partitioned into Tiles contiguous blocks, each slot makes
	// two tile-major sweeps (Send + intra-tile resolve, then a
	// boundary-exchange merge of cross-tile edges + deliver + decide),
	// and under Workers > 1 the tiles run on independent goroutines.
	// Results are bit-identical to the untiled engine at any tile and
	// worker count — every merge is order-free — which the tiled
	// differential suite pins. Tiling pays off when ids are spatially
	// coherent (relabel with internal/graph HilbertOrder/StripOrder/
	// BFSOrder first) so that most edges stay inside a tile. Tiles < 0
	// picks a size-based tile count automatically (AutoTiles); 0 or 1
	// keeps the untiled loop. A non-nil Medium replaces the resolve and
	// deliver phases wholesale, so tiled runs with a medium fall back to
	// the untiled loop (same results either way). Within a slot a traced
	// tiled run emits OnDeliver/OnCollision events grouped by tile
	// rather than in the untiled order; all other event streams, and
	// every Result field, are identical.
	Tiles int
}

// Engine executes a Config slot by slot. Use Run for the common case;
// the step-wise API supports protocols that need outside inspection
// between slots (tests, visualizers).
//
// The slot loop works on the graph's CSR view (one flat edge array plus
// offsets) and is zero-alloc in steady state: per-slot scratch is
// kept valid by standing sentinels rather than cleared, transmissions and undecided nodes
// are tracked in compact lists so no phase scans all n nodes, and a
// transmitter's whole neighborhood is one contiguous read. The original
// slice-chasing slot loop is retained verbatim as the reference engine
// (reference.go); differential tests pin this kernel to it bit-for-bit.
type Engine struct {
	cfg     Config
	n       int
	slot    int64
	awake   []bool
	out     []Message
	order   []int32 // node ids sorted by wake slot
	next    int     // index into order of the next node to wake
	numDone int
	decided []bool
	res     Result

	// CSR view of the topology, hoisted out of the per-edge hot path:
	// node v's neighbors are edges[rowStart[v]:rowEnd[v]]. On a static
	// run rowStart and rowEnd alias the graph's offsets array
	// (rowStart = offsets[:n], rowEnd = offsets[1:]), so every read
	// hits the exact addresses the offsets-based kernel read; under
	// churn they alias the dynamic CSR's headers, which graph.Dyn
	// mutates in place (only the edges array must be re-fetched after
	// a delta, because a row relocation may reallocate it).
	rowStart []int32
	rowEnd   []int32
	edges    []int32

	// Compact activity lists, all in ascending node order. Ascending
	// matters: protocol state and per-node RNG arrays are allocated
	// node-by-node, so an ascending sweep is a regular-stride memory
	// walk the prefetcher can follow, while wake-order iteration is a
	// random permutation that stalls on every node at large n. tx holds
	// this slot's transmitters; awakeList every awake node (newly woken
	// ids are merged in, staying sorted); undecided the awake nodes that
	// have not decided, compacted stably in place as decisions land.
	tx        []int32
	awakeList []int32
	pending   []int32 // recently woken, not yet merged into awakeList
	undecided []int32

	// Per-slot receive scratch. The between-slot invariant: count == 0
	// for awake listeners, count == asleepCount for asleep nodes (set at
	// init, flipped at wake). Resolve treats count == 0 as "first touch
	// this slot", accumulates positive counts, and ignores negative ones
	// (asleep, or this slot's transmitters via txMarker) — negative
	// entries are never modified, so only touched listeners and
	// transmitters need a restore, both on lines already in hand.
	// Packing (from, count) into one 8-byte struct makes the resolve
	// phase's random accesses as dense as possible: eight receivers per
	// cache line.
	rs      []recvSlot
	touched []int32

	// Parallel-phase scratch, allocated on first use when Workers > 1.
	scratch []resolveScratch

	// Fault-injection state; nil unless Config.Faults is set (fault.go).
	fs *faultState

	// Dynamic-topology state; nil unless Config.Churn is set (churn.go).
	cs *churnState

	// off is the combined exclusion filter the protocol phases consult:
	// off[v] is true while v is crashed (faults) or absent (churn).
	// nil unless at least one of those seams is active — the plain hot
	// path keeps its single nil check — and the two node sets are
	// validated disjoint, so each seam owns its members' bits.
	off []bool
	// everWoke tracks membership in awakeList∪pending (entries are
	// never removed from those lists), so a fault restart or churn
	// rejoin knows whether the node must be re-inserted or is merely
	// reactivated in place. Allocated with off.
	everWoke []bool
	// woken, rejoinU and rejoinA are slot-prologue scratch shared by
	// the fault and churn seams (both run sequentially, each flushing
	// before the other starts): the surviving wake block, re-inserts
	// into undecided, and re-inserts into the awake lists.
	woken   []int32
	rejoinU []int32
	rejoinA []int32

	// Tiled-kernel state; nil unless Config.Tiles > 1 selected the tiled
	// slot loop (tiled.go). silent marks nodes whose protocols declared
	// permanent quiescence (see the Quiescent interface); the tiled Send
	// sweep skips them and the activity lists compact them away.
	ts          *tileState
	silent      []bool
	silentCount int
	// pendingSorted is the length of pending's known-sorted prefix and
	// pendScratch the merge buffer; both are tiled-loop-only (the
	// untiled loop sorts pending once, at flush time).
	pendingSorted int
	pendScratch   []int32

	// Reception-medium state; nil unless Config.Medium is set
	// (medium.go). listenFn is the standing listener predicate handed to
	// the medium (built once, so the slot loop allocates no closures) and
	// recs the reusable reception buffer.
	med      medium.Instance
	listenFn func(int32) bool
	recs     []medium.Reception
}

// recvSlot is one receiver's per-slot resolve accumulator. The
// between-slot invariant is count == 0 for awake nodes and
// count == asleepCount for asleep ones, so the resolve phase reads the
// receiver's sleep state from the accumulator it must load anyway and
// never consults the awake array.
type recvSlot struct {
	from  int32 // lowest-indexed transmitting neighbor this slot
	count int32 // transmitting neighbors this slot
}

// asleepCount is the standing count of an asleep receiver: negative, so
// the resolve phase skips the node without consulting the awake array.
// The entry is never modified while the node sleeps; a wake-up resets
// it to 0.
const asleepCount = -1 << 30

// txMarker is the count a node's own transmission stamps into its rs
// entry during the Send phase. Negative like asleepCount, it keeps
// transmitting receivers out of touched, so the deliver phase needs no
// outbox check; the per-slot tx sweep restores the entries to 0.
const txMarker = -1 << 28

// resolveScratch is one worker's private accumulator for the parallel
// resolve phase.
type resolveScratch struct {
	rs      []recvSlot
	touched []int32
	cleared []int32
}

// NewEngine validates the configuration and prepares a run.
func NewEngine(cfg Config) (*Engine, error) {
	return newEngine(cfg, false)
}

// newEngine is NewEngine plus the skew escape hatch used by
// RunUnaligned, which is the only engine that models clock offsets.
func newEngine(cfg Config, allowSkew bool) (*Engine, error) {
	if err := validateConfig(&cfg); err != nil {
		return nil, err
	}
	n := cfg.G.N()
	csr := cfg.G.CSR()
	e := &Engine{
		cfg:       cfg,
		n:         n,
		awake:     make([]bool, n),
		out:       make([]Message, n),
		decided:   make([]bool, n),
		rowStart:  csr.Offsets[:n],
		rowEnd:    csr.Offsets[1:],
		edges:     csr.Edges,
		awakeList: make([]int32, 0, n),
		undecided: make([]int32, 0, n),
		rs:        make([]recvSlot, n),
	}
	for i := range e.rs {
		e.rs[i].count = asleepCount // everyone starts asleep
	}
	e.order = wakeOrder(cfg.Wake)
	e.res = newResult(cfg.Wake)
	if cfg.Faults != nil || cfg.Churn != nil {
		e.off = make([]bool, n)
		e.everWoke = make([]bool, n)
	}
	if cfg.Faults != nil {
		fs, err := newFaultState(cfg.Faults, &e.cfg, n, allowSkew)
		if err != nil {
			return nil, err
		}
		e.fs = fs
	}
	if cfg.Churn != nil {
		if allowSkew {
			return nil, errors.New("radio: churn cannot run through RunUnaligned (the half-slot resolver has a static neighbor view)")
		}
		cs, err := newChurnState(cfg.Churn, &e.cfg, n)
		if err != nil {
			return nil, err
		}
		e.cs = cs
		// Re-aim the CSR view at the dynamic graph: the row-bound
		// headers are mutated in place across deltas, and nodes absent
		// at slot 0 are excluded before anything runs.
		e.rowStart, e.rowEnd = cs.dyn.RowBounds()
		e.edges = cs.dyn.EdgeArray()
		for _, v := range cfg.Churn.InitialAbsent {
			cs.absent[v] = true
			e.off[v] = true
		}
	}
	if cfg.Medium != nil {
		if cfg.Medium.N() != n {
			return nil, fmt.Errorf("radio: medium %q bound for %d nodes, graph has %d", cfg.Medium.Name(), cfg.Medium.N(), n)
		}
		e.med = cfg.Medium
		// The between-slot rs invariant makes the listener predicate one
		// load: count == 0 exactly for awake, non-transmitting,
		// non-crashed nodes (asleep and crashed hold asleepCount,
		// transmitters txMarker during the slot).
		e.listenFn = func(i int32) bool { return e.rs[i].count == 0 }
	}
	if cfg.Tiles > 1 && e.med == nil {
		// A pluggable medium replaces the resolve and deliver phases
		// wholesale, so there is nothing left to tile; such runs keep
		// the untiled loop (bit-identical either way).
		e.ts = newTileState(cfg.Tiles, n, e.rowStart, e.rowEnd, e.edges)
		if cfg.Faults == nil && cfg.Churn == nil {
			// The quiescence seam (tiled.go): allocated up front so
			// parallel tile workers never race to create it. Fault and
			// churn profiles disable it — a restart or rejoin must be
			// able to revive any node, and revived nodes re-enter via
			// the pending list only if they never left the activity
			// lists (conflict repair likewise re-contends a silenced
			// node).
			e.silent = make([]bool, n)
		}
	}
	return e, nil
}

// validateConfig checks and normalizes a Config in place. Shared with
// the reference engine so both reject exactly the same inputs.
func validateConfig(cfg *Config) error {
	if cfg.G == nil {
		return errors.New("radio: nil graph")
	}
	n := cfg.G.N()
	if len(cfg.Protocols) != n {
		return fmt.Errorf("radio: %d protocols for %d nodes", len(cfg.Protocols), n)
	}
	if len(cfg.Wake) != n {
		return fmt.Errorf("radio: %d wake slots for %d nodes", len(cfg.Wake), n)
	}
	for i, w := range cfg.Wake {
		if w < 0 {
			return fmt.Errorf("radio: node %d has negative wake slot %d", i, w)
		}
	}
	if cfg.MaxSlots <= 0 {
		cfg.MaxSlots = 50_000_000
	}
	if cfg.NEstimate <= 0 {
		cfg.NEstimate = n
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.Tiles < 0 {
		cfg.Tiles = AutoTiles(n)
	}
	if cfg.Tiles > maxTiles {
		cfg.Tiles = maxTiles
	}
	if cfg.Tiles > n {
		cfg.Tiles = n
	}
	return nil
}

// wakeOrder returns node ids sorted stably by wake slot (ties keep id
// order, so synchronous schedules wake in ascending id order).
func wakeOrder(wake []int64) []int32 {
	order := make([]int32, len(wake))
	for i := range order {
		order[i] = int32(i)
	}
	sort.SliceStable(order, func(a, b int) bool {
		return wake[order[a]] < wake[order[b]]
	})
	return order
}

// newResult initializes the per-run Result bookkeeping.
func newResult(wake []int64) Result {
	res := Result{
		WakeSlot:   append([]int64(nil), wake...),
		DecideSlot: make([]int64, len(wake)),
		PerNodeTx:  make([]int64, len(wake)),
	}
	for i := range res.DecideSlot {
		res.DecideSlot[i] = -1
	}
	return res
}

// splitmix64 advances a SplitMix64 state; used for the stateless drop
// coin so that drops are a pure function of (seed, slot, receiver).
func splitmix64(z uint64) uint64 {
	z += 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// dropCoin reports whether the delivery to receiver in slot is dropped:
// a pure function of (seed, slot, receiver), so the outcome is identical
// across engines, worker counts and phase orderings.
func dropCoin(seed, slot int64, receiver int32, prob float64) bool {
	if prob <= 0 {
		return false
	}
	h := splitmix64(splitmix64(uint64(seed)^uint64(slot)) ^ uint64(receiver))
	return float64(h>>11)/float64(1<<53) < prob
}

// captureCoin is the equally pure coin for the capture effect.
func captureCoin(seed, slot int64, receiver int32, prob float64) bool {
	if prob <= 0 {
		return false
	}
	h := splitmix64(splitmix64(uint64(seed)^uint64(slot)*0x9E3779B9) ^ uint64(receiver) ^ 0xCA97)
	return float64(h>>11)/float64(1<<53) < prob
}

func (e *Engine) dropped(slot int64, receiver int32) bool {
	return dropCoin(e.cfg.DropSeed, slot, receiver, e.cfg.DropProb)
}

func (e *Engine) captured(slot int64, receiver int32) bool {
	return captureCoin(e.cfg.DropSeed, slot, receiver, e.cfg.CaptureProb)
}

// Step simulates one slot. It returns false when the run is over
// (everyone decided or the slot limit was reached).
func (e *Engine) Step() bool {
	if e.ts != nil {
		return e.stepTiled()
	}
	t := e.slot
	ob := e.cfg.Observer
	met := e.cfg.Metrics

	e.wakePhase(t, ob, met)
	// A traced run flushes every slot so OnTransmit events keep the
	// reference's ascending-id order; so does the parallel path, whose
	// workers partition one list, and the medium path, which needs the
	// transmitter list in ascending order so float accumulation (SINR)
	// is bit-identical at any worker count.
	if len(e.pending) > 0 &&
		(e.cfg.Workers > 1 || ob != nil || e.med != nil ||
			len(e.pending) >= 256 && len(e.pending)*8 >= len(e.awakeList)) {
		sortInt32s(e.pending)
		e.awakeList = mergeSorted(e.awakeList, e.pending)
		e.pending = e.pending[:0]
	}

	// Send phase: every awake node ticks and chooses transmit/listen.
	// Iterating the sorted awake list touches exactly the awake nodes in
	// ascending order; protocols are independent state machines, so call
	// order within a slot cannot influence results. Transmission
	// bookkeeping (counters, max message size, events) is order-free and
	// fused into the same sweep.
	if e.cfg.Workers > 1 {
		e.parallelSend(t, e.awakeList)
		for _, v := range e.tx {
			e.noteTx(t, v, e.out[v], ob, met)
		}
	} else if e.off != nil {
		e.filteredSend(t, ob, met)
	} else {
		protos := e.cfg.Protocols
		for _, i := range e.awakeList {
			if msg := protos[i].Send(t); msg != nil {
				e.out[i] = msg
				e.rs[i].count = txMarker
				e.tx = append(e.tx, i)
				e.noteTx(t, i, msg, ob, met)
			}
		}
		for _, i := range e.pending {
			if msg := protos[i].Send(t); msg != nil {
				e.out[i] = msg
				e.rs[i].count = txMarker
				e.tx = append(e.tx, i)
				e.noteTx(t, i, msg, ob, met)
			}
		}
	}

	// Resolve phase: accumulate per-receiver transmitting-neighbor counts
	// and the lowest-indexed transmitter into the per-slot scratch. A
	// pluggable medium replaces both this and the deliver phase below;
	// the cleanup after them is shared.
	if e.med != nil {
		e.mediumResolveDeliver(t, ob, met)
	} else if e.cfg.Workers > 1 && len(e.tx) > 1 {
		e.parallelResolve()
	} else {
		for _, v := range e.tx {
			row := e.edges[e.rowStart[v]:e.rowEnd[v]]
			for _, u := range row {
				r := &e.rs[u]
				if r.count == 0 {
					r.count = 1
					r.from = v
					e.touched = append(e.touched, u)
				} else if r.count > 0 {
					r.count++
					if v < r.from {
						r.from = v
					}
				}
				// count < 0: asleep (standing asleepCount) or
				// transmitting (txMarker) — not a listener; the entry is
				// left untouched, so there is nothing to restore.
			}
		}
	}

	// Deliver phase: exactly-one rule at awake listeners. The delivered
	// message is recovered from the sender's outbox (out is cleared only
	// after this phase), so no per-receiver message scratch exists. Each
	// touched rs entry is zeroed here, while its line is in hand,
	// restoring the between-slot count == 0 invariant.
	if e.cfg.Workers > 1 && ob == nil && len(e.touched) > 1 {
		e.parallelDeliver(t)
	} else {
		for _, u := range e.touched {
			r := &e.rs[u]
			count, from := r.count, r.from
			r.count = 0
			if count >= 2 {
				if count == 2 && e.captured(t, u) {
					if e.fs != nil && e.faultSuppressed(t, from, u, &e.res.Jammed, &e.res.Lost, met) {
						continue
					}
					// Capture effect: the lowest-indexed transmitter's
					// signal survives the two-way collision.
					e.res.Deliveries++
					e.res.Captures++
					msg := e.out[from]
					if ob != nil {
						ob.OnDeliver(t, NodeID(u), msg)
					}
					if met != nil {
						met.AddDelivery()
						met.AddCapture()
					}
					e.cfg.Protocols[u].Recv(t, msg)
					continue
				}
				e.res.Collisions++
				if ob != nil {
					ob.OnCollision(t, NodeID(u), int(count))
				}
				if met != nil {
					met.AddCollision()
				}
				continue
			}
			if e.fs != nil && e.faultSuppressed(t, from, u, &e.res.Jammed, &e.res.Lost, met) {
				continue
			}
			if e.dropped(t, u) {
				if met != nil {
					met.AddDrop()
				}
				continue
			}
			e.res.Deliveries++
			msg := e.out[from]
			if ob != nil {
				ob.OnDeliver(t, NodeID(u), msg)
			}
			if met != nil {
				met.AddDelivery()
			}
			e.cfg.Protocols[u].Recv(t, msg)
		}
	}
	e.touched = e.touched[:0]
	for _, v := range e.tx {
		e.out[v] = nil
		e.rs[v].count = 0 // transmitters return to the awake-idle state
	}
	e.tx = e.tx[:0]

	// Decision detection over the compact undecided list. The
	// filtered variant keeps crashed and absent nodes in the list
	// (they may restart or rejoin) without polling them.
	if e.off != nil {
		e.filteredDecide(t, ob, met)
	} else {
		w := 0
		protos := e.cfg.Protocols
		for _, i := range e.undecided {
			if protos[i].Done() {
				e.decided[i] = true
				e.numDone++
				e.res.DecideSlot[i] = t
				if ob != nil {
					ob.OnDecide(t, NodeID(i))
				}
				if met != nil {
					met.AddDecision()
				}
			} else {
				e.undecided[w] = i
				w++
			}
		}
		e.undecided = e.undecided[:w]
	}

	return e.finishSlot(t, ob, met)
}

// wakePhase applies the slot's fault events and wake-ups: the shared
// head of the untiled and tiled slot loops.
func (e *Engine) wakePhase(t int64, ob Observer, met *obs.Metrics) {
	// Topology batches (joins/leaves/edge deltas) and fault events
	// (crash/restart) take effect at the start of the slot, before any
	// protocol runs.
	if e.cs != nil {
		e.churnBeginSlot(t, ob, met)
	}
	if e.fs != nil {
		e.faultBeginSlot(t, ob, met)
	}

	// Wake-ups scheduled for this slot. The block e.order[prevNext:next]
	// is in ascending id order (wakeOrder sorts stably, so ties keep id
	// order), letting the sorted activity lists absorb it with one
	// backward merge each. The filtered variant additionally consumes
	// nodes that are crashed or absent at their wake slot without
	// starting them.
	if e.off != nil {
		e.filteredWake(t, ob, met)
		return
	}
	prevNext := e.next
	for e.next < e.n && e.cfg.Wake[e.order[e.next]] == t {
		id := e.order[e.next]
		e.awake[id] = true
		e.rs[id].count = 0 // standing state flips from asleep to awake-idle
		if ob != nil {
			ob.OnWake(t, NodeID(id))
		}
		if met != nil {
			met.AddWakeup()
		}
		e.cfg.Protocols[id].Start(t)
		e.next++
	}
	if e.next > prevNext {
		woken := e.order[prevNext:e.next]
		e.undecided = mergeSorted(e.undecided, woken)
		// Newly woken ids go to a small pending list first; merging the
		// whole awake list every slot of a long wake ramp would cost
		// O(awake) per slot. The pending list is flushed once it exceeds
		// an eighth of the merged list, so total merge work stays O(n)
		// over any ramp while Send still walks mostly-ascending ids.
		e.pending = append(e.pending, woken...)
	}
}

// finishSlot is the shared slot epilogue: end-of-slot seams, counters,
// and the termination check.
func (e *Engine) finishSlot(t int64, ob Observer, met *obs.Metrics) bool {
	if ob != nil {
		ob.OnSlot(t)
	}
	if met != nil {
		met.AddSlot()
	}
	e.slot++
	simulatedSlots.Add(1)
	e.res.Slots = e.slot
	if e.cs != nil && e.slot <= e.cs.last {
		// Churn batches remain: a scheduled perturbation (join, leave,
		// or mobility delta) must not be skipped by early termination,
		// even if every currently present node has decided. This is
		// what lets one run measure recolor convergence after a
		// perturbation of an already converged coloring.
		return e.slot < e.cfg.MaxSlots
	}
	if e.numDone == e.n {
		e.res.AllDone = true
		return false
	}
	never := 0
	if e.fs != nil {
		never += e.fs.neverDone
	}
	if e.cs != nil {
		never += e.cs.neverDone
	}
	if never > 0 && e.numDone+never == e.n {
		// Graceful degradation: every node that can still decide has;
		// the remainder are down or gone for good. AllDone stays false
		// so callers see the run as incomplete.
		return false
	}
	return e.slot < e.cfg.MaxSlots
}

// noteTx records one transmission: run counters, the maximum message
// size, and the per-event seams. All of it is order-free (sums, maxes,
// per-node counters), so it may run inside any Send sweep order.
func (e *Engine) noteTx(t int64, v int32, msg Message, ob Observer, met *obs.Metrics) {
	e.res.Transmissions++
	e.res.PerNodeTx[v]++
	if bits := msg.Bits(e.cfg.NEstimate); bits > e.res.MaxMessageBits {
		e.res.MaxMessageBits = bits
	}
	if ob != nil {
		ob.OnTransmit(t, NodeID(v), msg)
	}
	if met != nil {
		met.AddTransmission()
	}
}

// sortInt32s sorts ids ascending. Used on the pending wake list, which
// is a concatenation of already-ascending per-slot blocks, just before
// it is merged into the main awake list.
func sortInt32s(ids []int32) {
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
}

// ascending32 reports whether ids is already sorted ascending — true
// for every wake block, so the tiled loop's incremental pending merge
// only pays for a sort when fault restarts interleaved with wakes.
func ascending32(ids []int32) bool {
	for i := 1; i < len(ids); i++ {
		if ids[i] < ids[i-1] {
			return false
		}
	}
	return true
}

// mergeSorted merges the ascending block add into the ascending list
// dst in place (backward merge over the appended tail), preserving
// ascending order. add must not alias dst.
func mergeSorted(dst, add []int32) []int32 {
	old := len(dst)
	dst = append(dst, add...)
	if old == 0 || dst[old-1] < add[0] {
		return dst // already in order (synchronous and sequential wakes)
	}
	i, j := old-1, len(add)-1
	for k := len(dst) - 1; j >= 0; k-- {
		if i >= 0 && dst[i] > add[j] {
			dst[k] = dst[i]
			i--
		} else {
			dst[k] = add[j]
			j--
		}
	}
	return dst
}

// workerRanges splits [0, n) into at most workers contiguous ranges.
func workerRanges(n, workers int) [][2]int {
	if n == 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	chunk := (n + workers - 1) / workers
	var out [][2]int
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		out = append(out, [2]int{lo, hi})
	}
	return out
}

// parallelSend runs the Send phase over the awake nodes on Workers
// goroutines. Each worker appends its transmitters to a private list;
// the lists are concatenated in worker order, so tx is deterministic.
func (e *Engine) parallelSend(t int64, awakeIDs []int32) {
	off := e.off
	ranges := workerRanges(len(awakeIDs), e.cfg.Workers)
	txLocal := make([][]int32, len(ranges))
	var wg sync.WaitGroup
	for w, r := range ranges {
		wg.Add(1)
		go func(w int, ids []int32) {
			defer wg.Done()
			var local []int32
			for _, i := range ids {
				if off != nil && off[i] {
					continue
				}
				if msg := e.cfg.Protocols[i].Send(t); msg != nil {
					e.out[i] = msg
					e.rs[i].count = txMarker // workers own disjoint ids
					local = append(local, i)
				}
			}
			txLocal[w] = local
		}(w, awakeIDs[r[0]:r[1]])
	}
	wg.Wait()
	for _, local := range txLocal {
		e.tx = append(e.tx, local...)
	}
}

// parallelResolve partitions the transmitters' concatenated CSR rows
// into contiguous ranges of roughly equal edge count, lets each worker
// accumulate (count, lowest sender) into private zero-invariant scratch,
// and merges the partial accumulators sequentially. The merged state is
// independent of the partition because counts add and senders take the
// minimum — both order-free — so the result is bit-identical to the
// sequential resolve for any worker count.
func (e *Engine) parallelResolve() {
	workers := e.cfg.Workers
	if e.scratch == nil {
		e.scratch = make([]resolveScratch, 0, workers)
	}
	for len(e.scratch) < workers {
		e.scratch = append(e.scratch, resolveScratch{
			rs: make([]recvSlot, e.n),
		})
	}

	// Partition tx at row granularity by cumulative edge count.
	total := 0
	for _, v := range e.tx {
		total += int(e.rowEnd[v] - e.rowStart[v])
	}
	target := (total + workers - 1) / workers
	if target < 1 {
		target = 1
	}
	type span struct{ lo, hi int }
	var spans []span
	lo, acc := 0, 0
	for i, v := range e.tx {
		acc += int(e.rowEnd[v] - e.rowStart[v])
		if acc >= target && len(spans) < workers-1 {
			spans = append(spans, span{lo, i + 1})
			lo, acc = i+1, 0
		}
	}
	if lo < len(e.tx) {
		spans = append(spans, span{lo, len(e.tx)})
	}

	var wg sync.WaitGroup
	for w, s := range spans {
		wg.Add(1)
		go func(ws *resolveScratch, txs []int32) {
			defer wg.Done()
			ws.touched = ws.touched[:0]
			for _, v := range txs {
				row := e.edges[e.rowStart[v]:e.rowEnd[v]]
				for _, u := range row {
					r := &ws.rs[u]
					if r.count == 0 {
						if !e.awake[u] {
							r.count = asleepCount
							ws.cleared = append(ws.cleared, u)
							continue
						}
						r.count = 1
						r.from = v
						ws.touched = append(ws.touched, u)
					} else {
						r.count++
						if v < r.from {
							r.from = v
						}
					}
				}
			}
		}(&e.scratch[w], e.tx[s.lo:s.hi])
	}
	wg.Wait()

	// Deterministic merge in worker order; each worker entry is zeroed as
	// it is folded in, restoring the workers' count == 0 invariant.
	for w := range spans {
		ws := &e.scratch[w]
		for _, u := range ws.touched {
			p := &ws.rs[u]
			r := &e.rs[u]
			if r.count == 0 {
				*r = *p
				e.touched = append(e.touched, u)
			} else {
				r.count += p.count
				if p.from < r.from {
					r.from = p.from
				}
			}
			p.count = 0
		}
		for _, u := range ws.cleared {
			ws.rs[u].count = 0
		}
		ws.cleared = ws.cleared[:0]
	}
}

// deliverTally is one worker's share of the deliver-phase counters.
type deliverTally struct {
	deliveries, captures, collisions int64
	jammed, lost                     int64
}

// parallelDeliver partitions the touched receivers across workers. A
// receiver appears in touched exactly once (the first-touch count dedupes), so
// no two workers ever call the same protocol, and all per-receiver
// inputs (the rs accumulator, out, the drop and capture coins) are
// read-only pure data. Counter partials are summed in worker order;
// sums are order-free, so the totals match the sequential deliver
// exactly. Only taken when Config.Observer is nil: a traced run keeps
// the sequential path so its event stream stays fully ordered.
func (e *Engine) parallelDeliver(t int64) {
	met := e.cfg.Metrics
	ranges := workerRanges(len(e.touched), e.cfg.Workers)
	tallies := make([]deliverTally, len(ranges))
	var wg sync.WaitGroup
	for w, r := range ranges {
		wg.Add(1)
		go func(w int, us []int32) {
			defer wg.Done()
			var tl deliverTally
			for _, u := range us {
				r := &e.rs[u]
				count, from := r.count, r.from
				r.count = 0 // each receiver is in exactly one partition
				if count >= 2 {
					if count == 2 && e.captured(t, u) {
						if e.fs != nil && e.faultSuppressed(t, from, u, &tl.jammed, &tl.lost, met) {
							continue
						}
						tl.deliveries++
						tl.captures++
						if met != nil {
							met.AddDelivery()
							met.AddCapture()
						}
						e.cfg.Protocols[u].Recv(t, e.out[from])
						continue
					}
					tl.collisions++
					if met != nil {
						met.AddCollision()
					}
					continue
				}
				if e.fs != nil && e.faultSuppressed(t, from, u, &tl.jammed, &tl.lost, met) {
					continue
				}
				if e.dropped(t, u) {
					if met != nil {
						met.AddDrop()
					}
					continue
				}
				tl.deliveries++
				if met != nil {
					met.AddDelivery()
				}
				e.cfg.Protocols[u].Recv(t, e.out[from])
			}
			tallies[w] = tl
		}(w, e.touched[r[0]:r[1]])
	}
	wg.Wait()
	for _, tl := range tallies {
		e.res.Deliveries += tl.deliveries
		e.res.Captures += tl.captures
		e.res.Collisions += tl.collisions
		e.res.Jammed += tl.jammed
		e.res.Lost += tl.lost
	}
}

// Result returns the statistics accumulated so far. It is valid after
// the run finishes (Step returned false) and between steps.
func (e *Engine) Result() *Result {
	if e.fs != nil {
		e.res.Down = e.downList(e.res.Down[:0])
	}
	if e.cs != nil {
		e.res.Left = e.cs.leftList(e.res.Left[:0])
	}
	return &e.res
}

// downList appends the currently crashed nodes to dst in ascending
// order: the combined off filter minus the churn layer's absentees
// (the two sets are disjoint by validation).
func (e *Engine) downList(dst []int32) []int32 {
	for i, o := range e.off {
		if o && (e.cs == nil || !e.cs.absent[i]) {
			dst = append(dst, int32(i))
		}
	}
	return dst
}

// Slot returns the next slot to be simulated.
func (e *Engine) Slot() int64 { return e.slot }

// Run executes the configuration to completion and returns the result.
func Run(cfg Config) (*Result, error) {
	return RunContext(context.Background(), cfg)
}

// cancelCheckMask gates the cancellation poll in the run loops: the
// context is consulted once every 1024 slots, keeping the select off
// the per-slot hot path (a full slot simulates n Send calls, so 1024
// slots bound the cancellation latency to well under a millisecond of
// wall time at realistic sizes).
const cancelCheckMask = 1024 - 1

// RunContext executes the configuration to completion, polling ctx
// every 1024 slots. On cancellation it returns ctx.Err() and no result.
func RunContext(ctx context.Context, cfg Config) (*Result, error) {
	e, err := NewEngine(cfg)
	if err != nil {
		return nil, err
	}
	done := ctx.Done()
	for e.Step() {
		if done != nil && e.slot&cancelCheckMask == 0 {
			select {
			case <-done:
				return nil, ctx.Err()
			default:
			}
		}
	}
	return e.Result(), nil
}
