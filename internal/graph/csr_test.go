package graph

import (
	"math/rand"
	"sort"
	"testing"
)

// naiveAdjacency builds adjacency sets the slow, obviously-correct way:
// a map per vertex, ignoring self-loops and duplicates. It is the oracle
// the CSR build is checked against.
func naiveAdjacency(n int, edges [][2]int32) []map[int32]bool {
	adj := make([]map[int32]bool, n)
	for i := range adj {
		adj[i] = map[int32]bool{}
	}
	for _, e := range edges {
		if e[0] == e[1] {
			continue
		}
		adj[e[0]][e[1]] = true
		adj[e[1]][e[0]] = true
	}
	return adj
}

func checkAgainstNaive(t *testing.T, n int, edges [][2]int32) {
	t.Helper()
	b := NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(int(e[0]), int(e[1]))
	}
	g := b.Build()
	if err := g.Validate(); err != nil {
		t.Fatalf("built graph fails validation: %v", err)
	}
	want := naiveAdjacency(n, edges)
	c := g.CSR()
	if c.N() != n {
		t.Fatalf("CSR.N() = %d, want %d", c.N(), n)
	}
	m := 0
	for v := 0; v < n; v++ {
		m += len(want[v])
	}
	if c.NumEdges() != m/2 || g.M() != m/2 {
		t.Fatalf("edge count: CSR=%d graph=%d want %d", c.NumEdges(), g.M(), m/2)
	}
	for v := 0; v < n; v++ {
		row := c.Row(int32(v))
		if len(row) != len(want[v]) {
			t.Fatalf("vertex %d: row %v, want the %d neighbors %v", v, row, len(want[v]), want[v])
		}
		if !sort.SliceIsSorted(row, func(i, j int) bool { return row[i] < row[j] }) {
			t.Fatalf("vertex %d: row %v not sorted", v, row)
		}
		for _, u := range row {
			if !want[v][u] {
				t.Fatalf("vertex %d: spurious neighbor %d", v, u)
			}
		}
		if c.Degree(v) != len(want[v])+1 || g.Degree(v) != len(want[v])+1 {
			t.Fatalf("vertex %d: degree CSR=%d graph=%d want %d", v, c.Degree(v), g.Degree(v), len(want[v])+1)
		}
		for u := 0; u < n; u++ {
			if c.HasEdge(v, u) != want[v][int32(u)] {
				t.Fatalf("CSR.HasEdge(%d,%d) = %v, want %v", v, u, c.HasEdge(v, u), want[v][int32(u)])
			}
			if g.HasEdge(v, u) != want[v][int32(u)] {
				t.Fatalf("HasEdge(%d,%d) = %v, want %v", v, u, g.HasEdge(v, u), want[v][int32(u)])
			}
		}
	}
}

// FuzzCSRBuild cross-checks the single-pass CSR build (adjacency rows,
// HasEdge, Degree) against the naive set-based construction on arbitrary
// edge lists, including duplicates and self-loops.
func FuzzCSRBuild(f *testing.F) {
	f.Add(uint16(4), []byte{0, 1, 1, 2, 2, 3})
	f.Add(uint16(3), []byte{0, 0, 1, 1, 2, 2})       // all self-loops
	f.Add(uint16(2), []byte{0, 1, 1, 0, 0, 1, 0, 1}) // duplicates both ways
	f.Add(uint16(1), []byte{})
	f.Add(uint16(0), []byte{})
	f.Fuzz(func(t *testing.T, nRaw uint16, raw []byte) {
		n := int(nRaw%64) + 1
		var edges [][2]int32
		for i := 0; i+1 < len(raw); i += 2 {
			u := int32(raw[i]) % int32(n)
			v := int32(raw[i+1]) % int32(n)
			edges = append(edges, [2]int32{u, v})
		}
		checkAgainstNaive(t, n, edges)
	})
}

// TestCSRBuildRandomized is the deterministic companion of FuzzCSRBuild:
// it runs the same cross-check on random edge lists so `go test` covers
// the property without the fuzz engine.
func TestCSRBuildRandomized(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 1 + r.Intn(40)
		edges := make([][2]int32, r.Intn(4*n))
		for i := range edges {
			edges[i] = [2]int32{int32(r.Intn(n)), int32(r.Intn(n))}
		}
		checkAgainstNaive(t, n, edges)
	}
}

// TestHasEdgeDuplicatesAndSelfLoops pins the regression the binary-search
// HasEdge must survive: duplicate edges collapse to one row entry, and
// self-loops are discarded entirely, so membership answers stay exact.
func TestHasEdgeDuplicatesAndSelfLoops(t *testing.T) {
	b := NewBuilder(5)
	b.AddEdge(1, 3)
	b.AddEdge(3, 1) // duplicate, reversed
	b.AddEdge(1, 3) // duplicate, same orientation
	b.AddEdge(2, 2) // self-loop: dropped
	b.AddEdge(0, 4)
	b.AddEdge(4, 4) // self-loop on an endpoint that has real edges
	g := b.Build()

	if g.M() != 2 {
		t.Fatalf("M() = %d, want 2 (duplicates and self-loops dropped)", g.M())
	}
	for _, tc := range []struct {
		u, v int
		want bool
	}{
		{1, 3, true}, {3, 1, true}, {0, 4, true}, {4, 0, true},
		{2, 2, false}, {4, 4, false}, {1, 1, false},
		{0, 1, false}, {2, 3, false}, {4, 3, false},
	} {
		if got := g.HasEdge(tc.u, tc.v); got != tc.want {
			t.Errorf("HasEdge(%d,%d) = %v, want %v", tc.u, tc.v, got, tc.want)
		}
		if got := g.CSR().HasEdge(tc.u, tc.v); got != tc.want {
			t.Errorf("CSR.HasEdge(%d,%d) = %v, want %v", tc.u, tc.v, got, tc.want)
		}
	}
	if got := len(g.Adj(1)); got != 1 {
		t.Errorf("Adj(1) has %d entries, want 1 (duplicate edge collapsed)", got)
	}
	if got := len(g.Adj(2)); got != 0 {
		t.Errorf("Adj(2) has %d entries, want 0 (self-loop dropped)", got)
	}
}
