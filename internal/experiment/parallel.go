package experiment

import (
	"fmt"

	"radiocolor/internal/fleet"
)

// This file is the bridge between the experiment generators and the
// fleet batch engine: every experiment computes its per-trial (or
// per-cell) measurements through parMap/parTrials and then folds the
// ordered results into table rows sequentially. The fold order is
// the job order, so a table is byte-identical whether the jobs ran on
// one goroutine or many — the determinism contract cmd/experiments
// -parallel relies on.

// parMap runs fn(0..n-1) and returns the results in index order. With
// o.Parallel > 1 the calls execute as jobs on a fleet engine bounded at
// o.Parallel workers; otherwise they run inline. fn must be
// deterministic and must not share mutable state across indices. A
// panic inside fn is recovered by the engine, attributed to its job,
// and re-raised here after the batch drains — matching the sequential
// path, where experiments panic on a failed run.
func parMap[T any](o Options, id string, n int, fn func(i int) T) []T {
	out := make([]T, n)
	if o.Parallel <= 1 || n <= 1 {
		if o.Progress != nil {
			o.Progress.AddTotal(n)
		}
		for i := 0; i < n; i++ {
			out[i] = fn(i)
			if o.Progress != nil {
				o.Progress.JobDone()
			}
		}
		return out
	}
	jobs := make([]fleet.Job, n)
	for i := 0; i < n; i++ {
		i := i
		jobs[i] = fleet.Job{
			ID:  fmt.Sprintf("%s/%d", id, i),
			Run: func() (any, error) { return fn(i), nil },
		}
	}
	cfg := fleet.Config{Workers: o.Parallel}
	if o.Progress != nil {
		cfg.Progress = o.Progress
	}
	results, err := fleet.New(cfg).Run(jobs)
	if err != nil {
		panic(fmt.Sprintf("experiment %s: %v", id, err))
	}
	for i, r := range results {
		if r.Err != nil {
			panic(fmt.Sprintf("experiment %s: job %s: %v", id, r.ID, r.Err))
		}
		out[i] = r.Value.(T)
	}
	return out
}

// parTrials runs fn over the cells×trials grid — each table cell's
// trials become fleet jobs — and returns the results indexed
// [cell][trial]. The flat job order is cell-major, so folding
// grid[cell] in trial order reproduces the sequential nested loop
// exactly.
func parTrials[T any](o Options, id string, cells, trials int, fn func(cell, trial int) T) [][]T {
	flat := parMap(o, id, cells*trials, func(i int) T {
		return fn(i/trials, i%trials)
	})
	grid := make([][]T, cells)
	for c := range grid {
		grid[c] = flat[c*trials : (c+1)*trials]
	}
	return grid
}
