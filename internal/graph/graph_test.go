package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// path returns the path graph 0-1-2-...-(n-1).
func path(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(i, i+1)
	}
	return b.Build()
}

// cycle returns the cycle graph on n vertices.
func cycle(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddEdge(i, (i+1)%n)
	}
	return b.Build()
}

// complete returns K_n.
func complete(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.AddEdge(i, j)
		}
	}
	return b.Build()
}

// star returns a star with center 0 and n-1 leaves.
func star(n int) *Graph {
	b := NewBuilder(n)
	for i := 1; i < n; i++ {
		b.AddEdge(0, i)
	}
	return b.Build()
}

// randomGraph returns a G(n, p) graph from the given source.
func randomGraph(n int, p float64, seed int64) *Graph {
	r := rand.New(rand.NewSource(seed))
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if r.Float64() < p {
				b.AddEdge(i, j)
			}
		}
	}
	return b.Build()
}

func TestBuilderDedupAndLoops(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0)
	b.AddEdge(0, 1)
	b.AddEdge(2, 2)
	g := b.Build()
	if g.M() != 1 {
		t.Errorf("M = %d, want 1 (dedup + loop discard)", g.M())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Error("edge (0,1) missing")
	}
	if g.HasEdge(2, 2) {
		t.Error("self-loop present")
	}
	if err := g.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestBuilderPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for out-of-range edge")
		}
	}()
	NewBuilder(2).AddEdge(0, 5)
}

func TestNewBuilderNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for negative n")
		}
	}()
	NewBuilder(-1)
}

func TestDegreeConvention(t *testing.T) {
	// The paper counts the node itself in δ_v.
	g := path(3)
	if g.Degree(0) != 2 || g.Degree(1) != 3 || g.Degree(2) != 2 {
		t.Errorf("degrees = %d %d %d, want 2 3 2", g.Degree(0), g.Degree(1), g.Degree(2))
	}
	if g.MaxDegree() != 3 {
		t.Errorf("MaxDegree = %d, want 3", g.MaxDegree())
	}
	if got := g.AvgDegree(); got != (2.0+3.0+2.0)/3.0 {
		t.Errorf("AvgDegree = %v", got)
	}
}

func TestNeighborhoodIncludesSelf(t *testing.T) {
	g := path(5)
	n2 := g.Neighborhood(2)
	want := []int32{1, 2, 3}
	if len(n2) != len(want) {
		t.Fatalf("N(2) = %v, want %v", n2, want)
	}
	for i := range want {
		if n2[i] != want[i] {
			t.Fatalf("N(2) = %v, want %v", n2, want)
		}
	}
	// Endpoint: self must still be inserted even when larger than all
	// neighbors.
	n4 := g.Neighborhood(4)
	if len(n4) != 2 || n4[0] != 3 || n4[1] != 4 {
		t.Fatalf("N(4) = %v, want [3 4]", n4)
	}
	n0 := g.Neighborhood(0)
	if len(n0) != 2 || n0[0] != 0 || n0[1] != 1 {
		t.Fatalf("N(0) = %v, want [0 1]", n0)
	}
}

func TestTwoHopAndKHop(t *testing.T) {
	g := path(7)
	got := g.TwoHop(3)
	want := []int32{1, 2, 3, 4, 5}
	if len(got) != len(want) {
		t.Fatalf("TwoHop(3) = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("TwoHop(3) = %v", got)
		}
	}
	for v := 0; v < 7; v++ {
		k2 := g.KHop(v, 2)
		t2 := g.TwoHop(v)
		if len(k2) != len(t2) {
			t.Fatalf("KHop(%d,2)=%v != TwoHop=%v", v, k2, t2)
		}
		for i := range k2 {
			if k2[i] != t2[i] {
				t.Fatalf("KHop(%d,2)=%v != TwoHop=%v", v, k2, t2)
			}
		}
	}
	if got := g.KHop(0, 0); len(got) != 1 || got[0] != 0 {
		t.Errorf("KHop(0,0) = %v, want [0]", got)
	}
	if got := g.KHop(0, 100); len(got) != 7 {
		t.Errorf("KHop(0,∞) covers %d vertices, want 7", len(got))
	}
}

func TestConnectivity(t *testing.T) {
	if !path(5).Connected() {
		t.Error("path should be connected")
	}
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	g := b.Build()
	if g.Connected() {
		t.Error("two components should not be connected")
	}
	if g.Components() != 2 {
		t.Errorf("Components = %d, want 2", g.Components())
	}
	comp := g.Component(2)
	if len(comp) != 2 || comp[0] != 2 || comp[1] != 3 {
		t.Errorf("Component(2) = %v", comp)
	}
	empty := NewBuilder(0).Build()
	if !empty.Connected() {
		t.Error("empty graph counts as connected")
	}
	if got := NewBuilder(3).Build().Components(); got != 3 {
		t.Errorf("edgeless components = %d, want 3", got)
	}
}

func TestInduced(t *testing.T) {
	g := cycle(6)
	sub, orig := g.Induced([]int32{0, 1, 3, 4})
	if sub.N() != 4 {
		t.Fatalf("induced N = %d", sub.N())
	}
	// Edges kept: (0,1) and (3,4); edge (5,0), (1,2), (2,3), (4,5) dropped.
	if sub.M() != 2 {
		t.Fatalf("induced M = %d, want 2", sub.M())
	}
	if !sub.HasEdge(0, 1) || !sub.HasEdge(2, 3) {
		t.Error("induced edges misplaced")
	}
	if orig[2] != 3 || orig[3] != 4 {
		t.Errorf("orig mapping = %v", orig)
	}
}

func TestInducedDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for duplicate vertices")
		}
	}()
	path(3).Induced([]int32{0, 0})
}

func TestIsIndependent(t *testing.T) {
	g := cycle(6)
	if !g.IsIndependent([]int32{0, 2, 4}) {
		t.Error("{0,2,4} is independent in C6")
	}
	if g.IsIndependent([]int32{0, 1}) {
		t.Error("{0,1} is not independent in C6")
	}
	if !g.IsIndependent(nil) {
		t.Error("empty set is independent")
	}
	if !g.IsIndependent([]int32{3, 3}) {
		t.Error("duplicates are set-semantics, {3} is independent")
	}
}

func TestGreedyMISMaximal(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		g := randomGraph(60, 0.15, seed)
		mis := g.GreedyMIS()
		if !g.IsIndependent(mis) {
			t.Fatalf("seed %d: greedy set not independent", seed)
		}
		member := make(map[int32]bool)
		for _, v := range mis {
			member[v] = true
		}
		// Maximality: every vertex outside has a neighbor inside.
		for v := 0; v < g.N(); v++ {
			if member[int32(v)] {
				continue
			}
			covered := false
			for _, u := range g.Adj(v) {
				if member[u] {
					covered = true
					break
				}
			}
			if !covered {
				t.Fatalf("seed %d: vertex %d could be added", seed, v)
			}
		}
	}
}

func TestMaxIndependentSetKnown(t *testing.T) {
	cases := []struct {
		name string
		g    *Graph
		want int
	}{
		{"K5", complete(5), 1},
		{"C6", cycle(6), 3},
		{"C7", cycle(7), 3},
		{"P7", path(7), 4},
		{"star10", star(10), 9},
		{"edgeless8", NewBuilder(8).Build(), 8},
		{"empty", NewBuilder(0).Build(), 0},
	}
	for _, c := range cases {
		got, exact := c.g.MaxIndependentSetSize(0)
		if !exact {
			t.Errorf("%s: search not exact", c.name)
		}
		if got != c.want {
			t.Errorf("%s: MIS = %d, want %d", c.name, got, c.want)
		}
	}
}

// bruteMIS computes the exact maximum independent set by enumeration for
// tiny graphs.
func bruteMIS(g *Graph) int {
	n := g.N()
	best := 0
	for mask := 0; mask < 1<<n; mask++ {
		var set []int32
		for v := 0; v < n; v++ {
			if mask&(1<<v) != 0 {
				set = append(set, int32(v))
			}
		}
		if len(set) > best && g.IsIndependent(set) {
			best = len(set)
		}
	}
	return best
}

func TestMaxIndependentSetMatchesBrute(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		g := randomGraph(12, 0.3, seed)
		want := bruteMIS(g)
		got, exact := g.MaxIndependentSetSize(0)
		if !exact || got != want {
			t.Fatalf("seed %d: MIS = %d (exact=%v), brute = %d", seed, got, exact, want)
		}
	}
}

func TestMaxIndependentSetBudgetExhaustion(t *testing.T) {
	g := randomGraph(40, 0.2, 99)
	got, exact := g.MaxIndependentSetSize(1)
	if exact {
		t.Error("budget 1 should not complete on a 40-vertex graph")
	}
	// Even exhausted, the greedy seed guarantees a valid lower bound.
	if got < 1 {
		t.Errorf("lower bound = %d", got)
	}
	full, fullExact := g.MaxIndependentSetSize(0)
	if !fullExact {
		t.Fatal("full search should complete")
	}
	if got > full {
		t.Errorf("budgeted result %d exceeds exact %d", got, full)
	}
}

func TestKappaKnownGraphs(t *testing.T) {
	// Clique: every neighborhood is the whole clique → κ₁ = κ₂ = 1.
	k := complete(6).Kappa(KappaOptions{})
	if k.K1 != 1 || k.K2 != 1 || !k.Exact {
		t.Errorf("K6 kappa = %+v, want 1/1 exact", k)
	}
	// Star: N(center) is the whole star, MIS = all leaves.
	s := star(8).Kappa(KappaOptions{})
	if s.K1 != 7 || s.K2 != 7 {
		t.Errorf("star kappa = %+v, want 7/7", s)
	}
	// Long cycle: N(v) has 3 vertices (path) → κ₁ = 2; N²(v) is a
	// 5-path → κ₂ = 3.
	c := cycle(12).Kappa(KappaOptions{})
	if c.K1 != 2 || c.K2 != 3 {
		t.Errorf("C12 kappa = %+v, want 2/3", c)
	}
}

func TestKappaMonotone(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		g := randomGraph(30, 0.2, seed)
		k := g.Kappa(KappaOptions{})
		if k.K2 < k.K1 {
			t.Errorf("seed %d: κ₂ = %d < κ₁ = %d", seed, k.K2, k.K1)
		}
		if k.K1 < 1 && g.N() > 0 {
			t.Errorf("seed %d: κ₁ = %d", seed, k.K1)
		}
		if k.K1 > g.MaxDegree() {
			t.Errorf("seed %d: κ₁ = %d exceeds Δ = %d", seed, k.K1, g.MaxDegree())
		}
	}
}

func TestKappaGreedyFallback(t *testing.T) {
	g := randomGraph(40, 0.1, 7)
	exact := g.Kappa(KappaOptions{})
	approx := g.Kappa(KappaOptions{MaxNeighborhood: 2})
	if approx.Exact {
		t.Error("tiny MaxNeighborhood must force inexact result")
	}
	if approx.K1 > exact.K1 || approx.K2 > exact.K2 {
		t.Errorf("greedy bound exceeds exact: %+v vs %+v", approx, exact)
	}
}

// Property: HasEdge agrees with adjacency lists on random graphs.
func TestQuickHasEdgeConsistent(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(15, 0.3, seed)
		for v := 0; v < g.N(); v++ {
			present := make(map[int32]bool)
			for _, u := range g.Adj(v) {
				present[u] = true
			}
			for u := 0; u < g.N(); u++ {
				if g.HasEdge(v, u) != present[int32(u)] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: greedy MIS size never exceeds exact MIS size.
func TestQuickGreedyBelowExact(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(14, 0.25, seed)
		exact, ok := g.MaxIndependentSetSize(0)
		return ok && len(g.GreedyMIS()) <= exact
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: validate always passes on built graphs.
func TestQuickValidateBuilt(t *testing.T) {
	f := func(seed int64) bool {
		return randomGraph(20, 0.3, seed).Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestBitsetOps(t *testing.T) {
	b := newBitset(130)
	b.set(0)
	b.set(64)
	b.set(129)
	if !b.has(0) || !b.has(64) || !b.has(129) || b.has(1) {
		t.Error("set/has broken")
	}
	if b.count() != 3 {
		t.Errorf("count = %d, want 3", b.count())
	}
	b.clear(64)
	if b.has(64) || b.count() != 2 {
		t.Error("clear broken")
	}
	var got []int
	b.forEach(func(i int) { got = append(got, i) })
	if len(got) != 2 || got[0] != 0 || got[1] != 129 {
		t.Errorf("forEach = %v", got)
	}
	c := b.clone()
	c.set(5)
	if b.has(5) {
		t.Error("clone aliases storage")
	}
	mask := newBitset(130)
	mask.set(0)
	d := b.andNot(mask)
	if d.has(0) || !d.has(129) {
		t.Error("andNot broken")
	}
	if b.intersectCount(mask) != 1 {
		t.Error("intersectCount broken")
	}
	if b.empty() {
		t.Error("nonempty reported empty")
	}
	if !newBitset(10).empty() {
		t.Error("fresh bitset not empty")
	}
}

func TestEccentricityAndDiameter(t *testing.T) {
	if d := path(5).Diameter(); d != 4 {
		t.Errorf("P5 diameter = %d", d)
	}
	if d := cycle(8).Diameter(); d != 4 {
		t.Errorf("C8 diameter = %d", d)
	}
	if d := complete(6).Diameter(); d != 1 {
		t.Errorf("K6 diameter = %d", d)
	}
	if d := star(7).Diameter(); d != 2 {
		t.Errorf("star diameter = %d", d)
	}
	if e := path(5).Eccentricity(2); e != 2 {
		t.Errorf("P5 center eccentricity = %d", e)
	}
	if e := path(5).Eccentricity(0); e != 4 {
		t.Errorf("P5 endpoint eccentricity = %d", e)
	}
	// Disconnected → -1; empty → 0.
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	if d := b.Build().Diameter(); d != -1 {
		t.Errorf("disconnected diameter = %d", d)
	}
	if d := NewBuilder(0).Build().Diameter(); d != 0 {
		t.Errorf("empty diameter = %d", d)
	}
}
