package topology

import (
	"strings"
	"testing"
)

func roundTrip(t *testing.T, d *Deployment) *Deployment {
	t.Helper()
	var b strings.Builder
	if err := WriteDeployment(&b, d); err != nil {
		t.Fatal(err)
	}
	back, err := ReadDeployment(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("read back: %v\nserialized:\n%s", err, b.String()[:min(400, b.Len())])
	}
	return back
}

func TestDeploymentRoundTripGeometric(t *testing.T) {
	d := RandomUDG(UDGConfig{N: 60, Side: 5, Radius: 1.2, Seed: 3})
	back := roundTrip(t, d)
	if back.Name != d.Name || back.Radius != d.Radius {
		t.Errorf("metadata: %q %g", back.Name, back.Radius)
	}
	if len(back.Points) != len(d.Points) {
		t.Fatalf("points: %d vs %d", len(back.Points), len(d.Points))
	}
	for i := range d.Points {
		if d.Points[i] != back.Points[i] {
			t.Fatalf("point %d differs: %v vs %v", i, d.Points[i], back.Points[i])
		}
	}
	if back.G.M() != d.G.M() || back.G.N() != d.G.N() {
		t.Errorf("graph: %d/%d vs %d/%d", back.G.N(), back.G.M(), d.G.N(), d.G.M())
	}
}

func TestDeploymentRoundTripWalls(t *testing.T) {
	d := BIGWithWalls(UDGConfig{N: 40, Side: 4, Radius: 1, Seed: 5}, 7)
	back := roundTrip(t, d)
	if back.Obstacles.Count() != 7 {
		t.Fatalf("walls: %d", back.Obstacles.Count())
	}
	for i, w := range d.Obstacles.Walls {
		if back.Obstacles.Walls[i] != w {
			t.Fatalf("wall %d differs", i)
		}
	}
}

func TestDeploymentRoundTripAbstract(t *testing.T) {
	d := Ring(12)
	back := roundTrip(t, d)
	if back.Points != nil || back.G.M() != 12 {
		t.Errorf("abstract round-trip: points=%v M=%d", back.Points, back.G.M())
	}
}

func TestReadDeploymentErrors(t *testing.T) {
	cases := []string{
		"",
		"deployment \"x\"\n",           // missing radius
		"deployment \"x\"\nradius 1\n", // missing graph
		"deployment \"x\"\nradius 1\npoints 2\n0 0\n",        // truncated points
		"deployment \"x\"\nradius 1\nwalls 1\n",              // truncated walls
		"deployment \"x\"\nradius 1\npoints 1\n0 0\nn 2 0\n", // point/vertex mismatch
		"radius 1\nn 0 0\n",                                  // header missing
	}
	for i, in := range cases {
		if _, err := ReadDeployment(strings.NewReader(in)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestDeploymentNameQuoting(t *testing.T) {
	d := &Deployment{Name: "name with spaces \"and quotes\"", G: Ring(3).G}
	back := roundTrip(t, d)
	if back.Name != d.Name {
		t.Errorf("name = %q", back.Name)
	}
	unnamed := &Deployment{G: Ring(3).G}
	if got := roundTrip(t, unnamed).Name; got != "unnamed" {
		t.Errorf("unnamed = %q", got)
	}
}

// failWriter fails after n bytes, exercising the write error paths.
type failWriter struct{ left int }

func (w *failWriter) Write(p []byte) (int, error) {
	if w.left <= 0 {
		return 0, errWriteFull
	}
	n := len(p)
	if n > w.left {
		n = w.left
	}
	w.left -= n
	if n < len(p) {
		return n, errWriteFull
	}
	return n, nil
}

var errWriteFull = &writeFullError{}

type writeFullError struct{}

func (*writeFullError) Error() string { return "writer full" }

func TestWriteDeploymentErrorPaths(t *testing.T) {
	d := BIGWithWalls(UDGConfig{N: 20, Side: 3, Radius: 1, Seed: 1}, 3)
	// Find the full serialized length, then fail at several prefixes to
	// walk every write site.
	var b strings.Builder
	if err := WriteDeployment(&b, d); err != nil {
		t.Fatal(err)
	}
	total := b.Len()
	for _, keep := range []int{0, 5, 30, total / 2} {
		if err := WriteDeployment(&failWriter{left: keep}, d); err == nil {
			t.Errorf("no error with %d-byte writer", keep)
		}
	}
}
