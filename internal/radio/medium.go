package radio

import (
	"radiocolor/internal/obs"
)

// mediumResolveDeliver is the resolve+deliver phase of the pluggable
// medium path (Config.Medium non-nil): the medium computes this slot's
// receptions from the transmitter list and the standing listener
// predicate, then each reception runs through the same suppression
// pipeline as the built-in rule — fault jam/loss first, then the legacy
// drop coin — before the protocol's Recv.
//
// The division of labor: crash faults act before the Send phase (a
// crashed node is neither a transmitter nor a listener, which the
// medium sees through the predicate), jam and loss act per reception
// here. Collisions, drowned and below-noise losses arrive as aggregate
// per-slot stats — the medium path does not emit per-listener
// OnCollision events (media may not even have a per-listener collision
// notion; SINR's interference is cumulative).
func (e *Engine) mediumResolveDeliver(t int64, ob Observer, met *obs.Metrics) {
	recs, st := e.med.Resolve(t, e.tx, e.listenFn, e.recs[:0])
	e.recs = recs // keep the grown buffer for the next slot
	e.res.Collisions += st.Collisions
	e.res.Drowned += st.Drowned
	e.res.BelowNoise += st.BelowNoise
	if met != nil {
		met.AddCollisions(st.Collisions)
		met.AddDrowned(st.Drowned)
		met.AddBelowNoise(st.BelowNoise)
	}
	for i := range recs {
		r := &recs[i]
		if e.fs != nil && e.faultSuppressed(t, r.From, r.To, &e.res.Jammed, &e.res.Lost, met) {
			continue
		}
		if e.dropped(t, r.To) {
			if met != nil {
				met.AddDrop()
			}
			continue
		}
		e.res.Deliveries++
		if r.Captured {
			e.res.Captures++
			if met != nil {
				met.AddCapture()
			}
		}
		msg := e.out[r.From]
		if ob != nil {
			ob.OnDeliver(t, NodeID(r.To), msg)
		}
		if met != nil {
			met.AddDelivery()
		}
		e.cfg.Protocols[r.To].Recv(t, msg)
	}
}
