package sched_test

import (
	"fmt"

	"radiocolor/internal/graph"
	"radiocolor/internal/sched"
)

// ExampleFromColoring builds the TDMA schedule of a properly colored
// path and checks the MAC properties the paper's introduction promises.
func ExampleFromColoring() {
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	g := b.Build()
	s, err := sched.FromColoring([]int32{0, 1, 0, 1})
	if err != nil {
		panic(err)
	}
	frame := s.SimulateFrame(g)
	fmt.Printf("frame=%d direct=%d success=%.2f\n",
		s.FrameLen, len(s.DirectConflicts(g)), frame.SuccessRate())
	// Output:
	// frame=2 direct=0 success=0.50
}
