package fp

import (
	"testing"

	"radiocolor/internal/medium"
	"radiocolor/internal/radio"
	"radiocolor/internal/topology"
	"radiocolor/internal/verify"
)

func colorsOf(nodes []*Node) []int32 {
	out := make([]int32, len(nodes))
	for i, v := range nodes {
		out[i] = v.Color()
	}
	return out
}

// run executes the baseline over d, optionally through a bound medium.
func run(t *testing.T, d *topology.Deployment, wake []int64, seed int64, med medium.Instance) ([]*Node, *radio.Result) {
	t.Helper()
	par := DefaultParams(d.N(), d.G.MaxDegree())
	nodes, protos := Nodes(d.N(), seed, par)
	res, err := radio.Run(radio.Config{
		G: d.G, Protocols: protos, Wake: wake, MaxSlots: 2_000_000, Medium: med,
	})
	if err != nil {
		t.Fatal(err)
	}
	return nodes, res
}

func TestFPColorsProperlyOnGraphModel(t *testing.T) {
	// The baseline targets SINR, but under the graph rule it must work
	// too — reception is strictly cleaner. Require every seed proper and
	// within the palette: an improper decided coloring here is a logic
	// bug, not interference bad luck.
	for seed := int64(0); seed < 6; seed++ {
		d := topology.RandomUDG(topology.UDGConfig{N: 60, Side: 5, Radius: 1.2, Seed: seed})
		nodes, res := run(t, d, radio.WakeSynchronous(d.N()), seed+11, nil)
		if !res.AllDone {
			t.Fatalf("seed %d: did not terminate in %d slots", seed, res.Slots)
		}
		colors := colorsOf(nodes)
		if rep := verify.Check(d.G, colors); !rep.OK() {
			t.Errorf("seed %d: improper coloring: %v", seed, rep)
		}
		delta := d.G.MaxDegree()
		for v, c := range colors {
			if c < 0 || int(c) > delta {
				t.Fatalf("seed %d: node %d color %d outside palette {0..%d}", seed, v, c, delta)
			}
		}
	}
}

func TestFPColorsProperlyUnderSINR(t *testing.T) {
	// The model the algorithm was designed for: matched noise keeps the
	// decode range at the unit-disk radius, with real cumulative
	// interference underneath.
	const radius = 1.2
	for seed := int64(0); seed < 4; seed++ {
		d := topology.RandomUDG(topology.UDGConfig{N: 50, Side: 5, Radius: radius, Seed: seed})
		m := medium.SINR{Alpha: 4, Beta: 1.5,
			NoiseDBM: medium.MatchedNoiseDBM(0, 1.5, 4, radius*1.05)}
		inst, err := m.Bind(medium.Env{N: d.N(), Points: d.Points})
		if err != nil {
			t.Fatal(err)
		}
		nodes, res := run(t, d, radio.WakeUniform(d.N(), 200, seed), seed+31, inst)
		if !res.AllDone {
			t.Fatalf("seed %d: did not terminate in %d slots", seed, res.Slots)
		}
		if rep := verify.Check(d.G, colorsOf(nodes)); !rep.OK() {
			t.Errorf("seed %d: improper coloring under SINR: %v", seed, rep)
		}
	}
}

func TestFPUndecidedIsUncolored(t *testing.T) {
	v := New(3, radio.NodeRand(1, 3), Params{MaxColor: 4, TxProb: 0.5, QuietSlots: 100})
	if v.Color() != -1 {
		t.Errorf("unstarted node Color() = %d, want -1", v.Color())
	}
	v.Start(0)
	if v.Color() != -1 {
		t.Errorf("undecided node Color() = %d, want -1", v.Color())
	}
}

func TestFPRestartable(t *testing.T) {
	// The fault layer's crash/restart path requires Reset; pin the
	// interface so a refactor cannot silently drop it.
	var p radio.Protocol = New(0, radio.NodeRand(1, 0), Params{MaxColor: 2})
	if _, ok := p.(radio.Restartable); !ok {
		t.Fatal("fp.Node no longer implements radio.Restartable")
	}
}
