package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"sync"
)

// Kind classifies slot-level trace events.
type Kind uint8

const (
	// KindTransmit records a node transmitting.
	KindTransmit Kind = iota
	// KindDeliver records a successful reception.
	KindDeliver
	// KindCollision records a listener with ≥ 2 transmitting neighbors.
	KindCollision
	// KindDecide records a node's irrevocable decision.
	KindDecide
	// KindWake records a node waking up.
	KindWake
	// KindPhase records a protocol phase transition (reported by
	// internal/core through the Collector hook).
	KindPhase

	numKinds = 6
)

var kindNames = [numKinds]string{"tx", "rx", "coll", "decide", "wake", "phase"}

// String implements fmt.Stringer with the wire name used in JSONL.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// ParseKind inverts String (for sink filters and the JSONL decoder).
func ParseKind(s string) (Kind, error) {
	for i, name := range kindNames {
		if name == s {
			return Kind(i), nil
		}
	}
	return 0, fmt.Errorf("obs: unknown event kind %q", s)
}

// Event is one recorded slot event. The struct is fixed-size (no
// strings), so the tracer's ring buffer is allocation-free once warm.
type Event struct {
	// Slot is the simulated slot the event occurred in.
	Slot int64
	// Kind classifies the event.
	Kind Kind
	// Node is the acting node: transmitter, receiver, collision victim,
	// decider, waker, or phase-changer.
	Node int32
	// From is the sender for KindDeliver, −1 otherwise.
	From int32
	// Count is the transmitter count for KindCollision.
	Count int32
	// Phase is the entered phase for KindPhase.
	Phase Phase
	// Class is the verification/color class entered for KindPhase.
	Class int32
}

// appendJSONL appends the event's single-line JSON form (no trailing
// newline) to buf and returns the extended slice.
func (e Event) appendJSONL(buf []byte) []byte {
	buf = append(buf, `{"slot":`...)
	buf = strconv.AppendInt(buf, e.Slot, 10)
	buf = append(buf, `,"kind":"`...)
	buf = append(buf, e.Kind.String()...)
	buf = append(buf, `","node":`...)
	buf = strconv.AppendInt(buf, int64(e.Node), 10)
	switch e.Kind {
	case KindDeliver:
		buf = append(buf, `,"from":`...)
		buf = strconv.AppendInt(buf, int64(e.From), 10)
	case KindCollision:
		buf = append(buf, `,"n":`...)
		buf = strconv.AppendInt(buf, int64(e.Count), 10)
	case KindPhase:
		buf = append(buf, `,"phase":"`...)
		buf = append(buf, e.Phase.String()...)
		buf = append(buf, `","class":`...)
		buf = strconv.AppendInt(buf, int64(e.Class), 10)
	}
	return append(buf, '}')
}

// MarshalJSONL renders the event as one JSONL line (without newline).
func (e Event) MarshalJSONL() []byte { return e.appendJSONL(nil) }

// jsonEvent is the decode side of the JSONL schema.
type jsonEvent struct {
	Slot  int64  `json:"slot"`
	Kind  string `json:"kind"`
	Node  int32  `json:"node"`
	From  *int32 `json:"from"`
	N     int32  `json:"n"`
	Phase string `json:"phase"`
	Class int32  `json:"class"`
}

// UnmarshalJSONL parses one JSONL line produced by MarshalJSONL.
func (e *Event) UnmarshalJSONL(line []byte) error {
	var j jsonEvent
	if err := json.Unmarshal(line, &j); err != nil {
		return fmt.Errorf("obs: bad trace line: %w", err)
	}
	k, err := ParseKind(j.Kind)
	if err != nil {
		return err
	}
	*e = Event{Slot: j.Slot, Kind: k, Node: j.Node, From: -1, Count: j.N}
	if j.From != nil {
		e.From = *j.From
	}
	if k == KindPhase {
		p, err := ParsePhase(j.Phase)
		if err != nil {
			return err
		}
		e.Phase = p
		e.Class = j.Class
	}
	return nil
}

// ReadEvents decodes a JSONL trace, invoking f for every event in
// order. Blank lines are skipped; decoding stops at the first error.
func ReadEvents(r io.Reader, f func(Event) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		b := bytes.TrimSpace(sc.Bytes())
		if len(b) == 0 {
			continue
		}
		var e Event
		if err := e.UnmarshalJSONL(b); err != nil {
			return fmt.Errorf("line %d: %w", line, err)
		}
		if err := f(e); err != nil {
			return err
		}
	}
	return sc.Err()
}

// Tracer records slot events into a bounded in-memory ring (the flight
// recorder: the tail of a run is where stalls and livelocks surface)
// and, when a sink is configured, streams every recorded event to it as
// JSONL. Record is safe for concurrent use; with the parallel send
// phase enabled, same-slot events from different nodes may interleave
// in sink order (cross-slot order is always preserved because the
// engines serialize between slots).
type Tracer struct {
	mu     sync.Mutex
	cap    int
	kinds  [numKinds]bool
	all    bool
	ring   []Event
	next   int
	total  int64
	sink   *bufio.Writer
	buf    []byte
	errSnk error
}

// NewTracer creates a tracer retaining the last cap events (≤ 0 means
// 4096). sink, when non-nil, additionally receives every event as one
// JSON line; writes are buffered, call Flush before reading the sink.
// kinds filters the recorded kinds; empty records everything.
func NewTracer(cap int, sink io.Writer, kinds ...Kind) *Tracer {
	if cap <= 0 {
		cap = 4096
	}
	t := &Tracer{cap: cap, all: len(kinds) == 0}
	for _, k := range kinds {
		if int(k) < numKinds {
			t.kinds[k] = true
		}
	}
	if sink != nil {
		t.sink = bufio.NewWriterSize(sink, 64*1024)
	}
	return t
}

// Record stores one event (subject to the kind filter).
func (t *Tracer) Record(e Event) {
	if !t.all && !t.kinds[e.Kind] {
		return
	}
	t.mu.Lock()
	if len(t.ring) < t.cap {
		t.ring = append(t.ring, e)
	} else {
		t.ring[t.next] = e
		t.next = (t.next + 1) % t.cap
	}
	t.total++
	if t.sink != nil && t.errSnk == nil {
		t.buf = e.appendJSONL(t.buf[:0])
		t.buf = append(t.buf, '\n')
		if _, err := t.sink.Write(t.buf); err != nil {
			t.errSnk = err
		}
	}
	t.mu.Unlock()
}

// Total returns how many matching events were recorded (including those
// evicted from the ring).
func (t *Tracer) Total() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Events returns the retained events in chronological order.
func (t *Tracer) Events() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, len(t.ring))
	out = append(out, t.ring[t.next:]...)
	out = append(out, t.ring[:t.next]...)
	return out
}

// Flush drains the sink buffer and reports the first sink write error,
// if any. Call once after the run (and before closing a file sink).
func (t *Tracer) Flush() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.sink == nil {
		return t.errSnk
	}
	if t.errSnk != nil {
		return t.errSnk
	}
	return t.sink.Flush()
}

// Dump writes the retained events to w, one line each, followed by a
// totals line (the colorsim -trace-tail format).
func (t *Tracer) Dump(w io.Writer) error {
	events := t.Events()
	for _, e := range events {
		if _, err := fmt.Fprintln(w, eventLine(e)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "(%d events total, %d retained)\n", t.Total(), len(events))
	return err
}

// eventLine renders a human-readable form of e.
func eventLine(e Event) string {
	switch e.Kind {
	case KindDeliver:
		return fmt.Sprintf("[%7d] rx    node %d ← %d", e.Slot, e.Node, e.From)
	case KindTransmit:
		return fmt.Sprintf("[%7d] tx    node %d", e.Slot, e.Node)
	case KindCollision:
		return fmt.Sprintf("[%7d] coll  node %d (%d transmitters)", e.Slot, e.Node, e.Count)
	case KindPhase:
		return fmt.Sprintf("[%7d] phase node %d → %s (class %d)", e.Slot, e.Node, e.Phase, e.Class)
	default:
		return fmt.Sprintf("[%7d] %-5s node %d", e.Slot, e.Kind, e.Node)
	}
}
