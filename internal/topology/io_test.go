package topology

import (
	"strings"
	"testing"

	"radiocolor/internal/geom"
)

func roundTrip(t *testing.T, d *Deployment) *Deployment {
	t.Helper()
	var b strings.Builder
	if err := WriteDeployment(&b, d); err != nil {
		t.Fatal(err)
	}
	back, err := ReadDeployment(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("read back: %v\nserialized:\n%s", err, b.String()[:min(400, b.Len())])
	}
	return back
}

func TestDeploymentRoundTripGeometric(t *testing.T) {
	d := RandomUDG(UDGConfig{N: 60, Side: 5, Radius: 1.2, Seed: 3})
	back := roundTrip(t, d)
	if back.Name != d.Name || back.Radius != d.Radius {
		t.Errorf("metadata: %q %g", back.Name, back.Radius)
	}
	if len(back.Points) != len(d.Points) {
		t.Fatalf("points: %d vs %d", len(back.Points), len(d.Points))
	}
	for i := range d.Points {
		if d.Points[i] != back.Points[i] {
			t.Fatalf("point %d differs: %v vs %v", i, d.Points[i], back.Points[i])
		}
	}
	if back.G.M() != d.G.M() || back.G.N() != d.G.N() {
		t.Errorf("graph: %d/%d vs %d/%d", back.G.N(), back.G.M(), d.G.N(), d.G.M())
	}
}

func TestDeploymentRoundTripWalls(t *testing.T) {
	d := BIGWithWalls(UDGConfig{N: 40, Side: 4, Radius: 1, Seed: 5}, 7)
	back := roundTrip(t, d)
	if back.Obstacles.Count() != 7 {
		t.Fatalf("walls: %d", back.Obstacles.Count())
	}
	for i, w := range d.Obstacles.Walls {
		if back.Obstacles.Walls[i] != w {
			t.Fatalf("wall %d differs", i)
		}
	}
}

func TestDeploymentRoundTripAbstract(t *testing.T) {
	d := Ring(12)
	back := roundTrip(t, d)
	if back.Points != nil || back.G.M() != 12 {
		t.Errorf("abstract round-trip: points=%v M=%d", back.Points, back.G.M())
	}
}

func TestReadDeploymentErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"empty", ""},
		{"missing radius", "deployment \"x\"\n"},
		{"missing graph", "deployment \"x\"\nradius 1\n"},
		{"truncated points", "deployment \"x\"\nradius 1\npoints 2\n0 0\n"},
		{"truncated walls", "deployment \"x\"\nradius 1\nwalls 1\n"},
		{"point/vertex mismatch", "deployment \"x\"\nradius 1\npoints 1\n0 0\nn 2 0\n"},
		{"header missing", "radius 1\nn 0 0\n"},
		{"truncated after points header", "deployment \"x\"\nradius 1\npoints 2\n"},
		{"truncated mid graph", "deployment \"x\"\nradius 1\nn 3 2\n0 1\n"},
		{"negative points count", "deployment \"x\"\nradius 1\npoints -1\nn 0 0\n"},
		{"negative walls count", "deployment \"x\"\nradius 1\nwalls -1\nn 0 0\n"},
		{"NaN radius", "deployment \"x\"\nradius NaN\nn 0 0\n"},
		{"negative radius", "deployment \"x\"\nradius -2\nn 0 0\n"},
		{"Inf radius", "deployment \"x\"\nradius +Inf\nn 0 0\n"},
		{"NaN point x", "deployment \"x\"\nradius 1\npoints 1\nNaN 0\nn 1 0\n"},
		{"NaN point y", "deployment \"x\"\nradius 1\npoints 1\n0 NaN\nn 1 0\n"},
		{"Inf point", "deployment \"x\"\nradius 1\npoints 1\n-Inf 0\nn 1 0\n"},
		{"NaN wall", "deployment \"x\"\nradius 1\nwalls 1\n0 0 NaN 1\nn 0 0\n"},
		{"non-numeric point", "deployment \"x\"\nradius 1\npoints 1\na b\nn 1 0\n"},
		{"edge out of range", "deployment \"x\"\nradius 1\nn 2 1\n0 5\n"},
		{"self-loop edge", "deployment \"x\"\nradius 1\nn 2 1\n1 1\n"},
	}
	for _, c := range cases {
		if _, err := ReadDeployment(strings.NewReader(c.in)); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

// TestReadDeploymentDuplicateEdges pins the duplicate-edge contract:
// repeated (and reversed) edge lines collapse to one undirected edge
// rather than erroring, matching graph.Builder's dedup-at-Build rule.
func TestReadDeploymentDuplicateEdges(t *testing.T) {
	in := "deployment \"x\"\nradius 1\nn 3 4\n0 1\n1 0\n0 1\n1 2\n"
	d, err := ReadDeployment(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if d.G.M() != 2 {
		t.Fatalf("M = %d, want 2 (duplicates deduped)", d.G.M())
	}
	if !d.G.HasEdge(0, 1) || !d.G.HasEdge(1, 2) {
		t.Fatal("expected edges missing after dedup")
	}
}

// TestReadDeploymentFiniteRoundTrip ensures the validation accepts
// every value the writer can produce (large magnitudes included).
func TestReadDeploymentFiniteRoundTrip(t *testing.T) {
	d := &Deployment{
		Name:   "extremes",
		Radius: 1e300,
		Points: []geom.Point{{X: -1e308, Y: 1e308}, {X: 0, Y: 0}},
		G:      Ring(2).G,
	}
	back := roundTrip(t, d)
	if back.Radius != d.Radius || back.Points[0] != d.Points[0] {
		t.Fatalf("extreme values mangled: %+v", back)
	}
}

func TestDeploymentNameQuoting(t *testing.T) {
	d := &Deployment{Name: "name with spaces \"and quotes\"", G: Ring(3).G}
	back := roundTrip(t, d)
	if back.Name != d.Name {
		t.Errorf("name = %q", back.Name)
	}
	unnamed := &Deployment{G: Ring(3).G}
	if got := roundTrip(t, unnamed).Name; got != "unnamed" {
		t.Errorf("unnamed = %q", got)
	}
}

// failWriter fails after n bytes, exercising the write error paths.
type failWriter struct{ left int }

func (w *failWriter) Write(p []byte) (int, error) {
	if w.left <= 0 {
		return 0, errWriteFull
	}
	n := len(p)
	if n > w.left {
		n = w.left
	}
	w.left -= n
	if n < len(p) {
		return n, errWriteFull
	}
	return n, nil
}

var errWriteFull = &writeFullError{}

type writeFullError struct{}

func (*writeFullError) Error() string { return "writer full" }

func TestWriteDeploymentErrorPaths(t *testing.T) {
	d := BIGWithWalls(UDGConfig{N: 20, Side: 3, Radius: 1, Seed: 1}, 3)
	// Find the full serialized length, then fail at several prefixes to
	// walk every write site.
	var b strings.Builder
	if err := WriteDeployment(&b, d); err != nil {
		t.Fatal(err)
	}
	total := b.Len()
	for _, keep := range []int{0, 5, 30, total / 2} {
		if err := WriteDeployment(&failWriter{left: keep}, d); err == nil {
			t.Errorf("no error with %d-byte writer", keep)
		}
	}
}

func TestReadDeploymentExplicitIDs(t *testing.T) {
	// The `<id> <x> <y>` point form may arrive in any order; points must
	// land at their ids.
	src := `deployment "ids"
radius 1.5
points 3
2 5 6
0 1 2
1 3 4
n 3 2
0 1
1 2
`
	d, err := ReadDeployment(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	want := []geom.Point{{X: 1, Y: 2}, {X: 3, Y: 4}, {X: 5, Y: 6}}
	for i, p := range want {
		if d.Points[i] != p {
			t.Fatalf("point %d = %v, want %v", i, d.Points[i], p)
		}
	}
}

func TestReadDeploymentDuplicateNodeID(t *testing.T) {
	// Pre-fix, the duplicate silently overwrote node 1's position
	// (last-write-wins), quietly reshaping the unit-disk graph. It must
	// be rejected, and the error must say where.
	src := `deployment "dup"
radius 1.5
points 3
0 1 2
1 3 4
1 9 9
n 3 0
`
	_, err := ReadDeployment(strings.NewReader(src))
	if err == nil {
		t.Fatal("duplicate node id accepted")
	}
	for _, want := range []string{"duplicate node id 1", "point 2"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}
}

func TestReadDeploymentPointFormErrors(t *testing.T) {
	head := "deployment \"bad\"\nradius 1\npoints 2\n"
	cases := []struct {
		name, points, want string
	}{
		{"id out of range", "5 1 2\n0 3 4\n", "out of range"},
		{"negative id", "-1 1 2\n0 3 4\n", "out of range"},
		{"mixed arity", "1 2\n0 3 4\n", "bad point"},
		{"four fields first", "0 1 2 3\n1 4 5\n", "bad point"},
		{"arity drift in id mode", "0 1 2\n1 3 4 5\n", "want `<id> <x> <y>`"},
		{"non-numeric coordinate", "1 2\nx y\n", "bad point"},
	}
	for _, c := range cases {
		_, err := ReadDeployment(strings.NewReader(head + c.points + "n 2 0\n"))
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want substring %q", c.name, err, c.want)
		}
	}
}
