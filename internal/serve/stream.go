package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"

	"radiocolor/internal/obs"
	"radiocolor/internal/store"
)

// eventStream negotiates NDJSON (default) or SSE (on Accept:
// text/event-stream) and writes one flushed event at a time. typ is
// the SSE event name, pulled from the payload's Type field by the
// caller.
type eventStream struct {
	w       http.ResponseWriter
	flusher http.Flusher
	sse     bool
}

func newEventStream(w http.ResponseWriter, r *http.Request) (*eventStream, bool) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: "streaming unsupported"})
		return nil, false
	}
	sse := strings.Contains(r.Header.Get("Accept"), "text/event-stream")
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.WriteHeader(http.StatusOK)
	return &eventStream{w: w, flusher: flusher, sse: sse}, true
}

func (e *eventStream) emit(typ string, payload any) bool {
	var err error
	if e.sse {
		var data []byte
		data, err = json.Marshal(payload)
		if err == nil {
			_, err = fmt.Fprintf(e.w, "event: %s\ndata: %s\n\n", typ, data)
		}
	} else {
		err = json.NewEncoder(e.w).Encode(payload)
	}
	if err != nil {
		return false
	}
	e.flusher.Flush()
	return true
}

// handleStream serves GET /v1/jobs/{id}/stream: an initial "status"
// event, periodic "progress" samples of the job's obs registry while it
// runs, and a final "done" event carrying the full status (outcome
// included). The format is NDJSON by default and SSE when the client
// asks for text/event-stream; both flush per event, so a curl client
// watches the run live.
//
// State comes from the store, so the stream is correct even when the
// job executes on another replica; live progress samples, though, only
// flow while this replica runs the job (the obs registry is process
// local) — a remote job streams liveness "status" events until "done".
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rec, err := s.st.Get(id)
	if err != nil || rec.Kind != store.KindJob {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "unknown job"})
		return
	}
	es, ok := newEventStream(w, r)
	if !ok {
		return
	}
	emit := func(ev StreamEvent) bool { return es.emit(ev.Type, ev) }

	st := s.statusFromRecord(rec)
	if !emit(StreamEvent{Type: "status", State: st.State}) {
		return
	}
	if st.State.Terminal() {
		emit(StreamEvent{Type: "done", State: st.State, Status: &st})
		return
	}

	// The local done channel is the fast path; jobs executing elsewhere
	// never close it here, so the ticker polls the store too. A nil
	// channel blocks forever, which is exactly the fallback we want.
	var doneCh chan struct{}
	j := s.lookup(id)
	if j != nil {
		doneCh = j.done
	}
	final := func() {
		if rec, err := s.st.Get(id); err == nil {
			fs := s.statusFromRecord(rec)
			emit(StreamEvent{Type: "done", State: fs.State, Status: &fs})
		}
	}
	ticker := time.NewTicker(s.cfg.StreamInterval)
	defer ticker.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-doneCh:
			final()
			return
		case <-ticker.C:
			rec, err := s.st.Get(id)
			if err != nil {
				return // pruned mid-stream
			}
			if store.State(rec.State).Terminal() {
				final()
				return
			}
			if j == nil {
				// The job may have been claimed (and rehydrated) by this
				// replica after the stream opened.
				if j = s.lookup(id); j != nil {
					doneCh = j.done
				}
			}
			running := false
			if j != nil {
				j.mu.Lock()
				running = j.state == StateRunning
				j.mu.Unlock()
			}
			if !running {
				// Queued, or running remotely: re-emit the bare status so
				// the client sees liveness without a fake progress sample.
				if !emit(StreamEvent{Type: "status", State: JobState(rec.State)}) {
					return
				}
				continue
			}
			sample := sampleProgress(j.metrics)
			if !emit(StreamEvent{Type: "progress", State: StateRunning, Progress: &sample}) {
				return
			}
		}
	}
}

// sampleProgress converts an obs snapshot into the wire sample.
func sampleProgress(m *obs.Metrics) ProgressSample {
	snap := m.Snapshot()
	p := ProgressSample{
		Slots:         snap.Slots,
		Wakeups:       snap.Wakeups,
		Decisions:     snap.Decisions,
		Transmissions: snap.Transmissions,
		Deliveries:    snap.Deliveries,
		Collisions:    snap.Collisions,
		CollisionRate: snap.CollisionRate(),
		SlotsPerSec:   snap.SlotsPerSec(),
		PhaseNodes:    make(map[string]int64, obs.NumPhases),
	}
	snap.Export(func(name string, v int64, counter bool) {
		if !counter {
			p.PhaseNodes[strings.TrimPrefix(name, "phase_")] = v
		}
	})
	return p
}
