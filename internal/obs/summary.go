package obs

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"
)

// TraceSummary is the aggregate view of a JSONL trace: event counts by
// kind and the same per-phase attribution the Timeline computes online.
// A trace recorded with all kinds enabled summarizes to exactly the
// per-phase delivery/collision counts of the run's Timeline, which is
// the cross-check cmd/tracestat performs against a run's reported
// statistics.
type TraceSummary struct {
	// Events counts all decoded events; ByKind splits them.
	Events int64
	ByKind map[string]int64
	// FirstSlot and LastSlot span the trace.
	FirstSlot, LastSlot int64
	// Nodes is the number of distinct node ids seen.
	Nodes int
	// Phases aggregates channel events by the acting node's phase,
	// reconstructed by replaying the trace's phase events.
	Phases [NumPhases]PhaseTotals
	// Decisions counts decide events (also in ByKind).
	Decisions int64
}

// CollisionRate is collisions / (deliveries + collisions) over the
// whole trace.
func (s *TraceSummary) CollisionRate() float64 {
	var rx, coll int64
	for _, p := range s.Phases {
		rx += p.Deliveries
		coll += p.Collisions
	}
	if rx+coll == 0 {
		return 0
	}
	return float64(coll) / float64(rx+coll)
}

// Summarize replays a JSONL trace (as produced by Tracer with a sink)
// into a TraceSummary. Phase attribution needs the trace to include
// phase events; without them every event lands in the asleep row.
func Summarize(r io.Reader) (*TraceSummary, error) {
	s := &TraceSummary{ByKind: make(map[string]int64), FirstSlot: -1}
	phaseOf := make(map[int32]Phase)
	seen := make(map[int32]struct{})
	err := ReadEvents(r, func(e Event) error {
		s.Events++
		s.ByKind[e.Kind.String()]++
		if s.FirstSlot < 0 || e.Slot < s.FirstSlot {
			s.FirstSlot = e.Slot
		}
		if e.Slot > s.LastSlot {
			s.LastSlot = e.Slot
		}
		seen[e.Node] = struct{}{}
		switch e.Kind {
		case KindTransmit:
			s.Phases[phaseOf[e.Node]].Transmissions++
		case KindDeliver:
			s.Phases[phaseOf[e.Node]].Deliveries++
		case KindCollision:
			s.Phases[phaseOf[e.Node]].Collisions++
		case KindDecide:
			s.Decisions++
		case KindPhase:
			s.Phases[e.Phase].Entries++
			phaseOf[e.Node] = e.Phase
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	s.Nodes = len(seen)
	return s, nil
}

// Render writes the summary as an aligned report (the cmd/tracestat
// output format).
func (s *TraceSummary) Render(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	fmt.Fprintf(tw, "events\t%d\n", s.Events)
	kinds := make([]string, 0, len(s.ByKind))
	for k := range s.ByKind {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		fmt.Fprintf(tw, "  %s\t%d\n", k, s.ByKind[k])
	}
	if s.Events > 0 {
		fmt.Fprintf(tw, "slots\t%d–%d\n", s.FirstSlot, s.LastSlot)
	}
	fmt.Fprintf(tw, "nodes\t%d\n", s.Nodes)
	fmt.Fprintf(tw, "collision rate\t%.4f\n", s.CollisionRate())
	fmt.Fprintln(tw, "phase\tentries\ttx\trx\tcoll")
	for p := 0; p < NumPhases; p++ {
		t := s.Phases[p]
		if t.Entries == 0 && t.Transmissions == 0 && t.Deliveries == 0 && t.Collisions == 0 {
			continue
		}
		fmt.Fprintf(tw, "  %s\t%d\t%d\t%d\t%d\n",
			Phase(p), t.Entries, t.Transmissions, t.Deliveries, t.Collisions)
	}
	return tw.Flush()
}
