package fault

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseProfile parses the compact textual profile syntax shared by
// cmd/colorsim -faults and the serve job API's "faults" field:
//
//	profile := term (',' term)*
//	term    := "seed=" int
//	         | "loss=" float
//	         | "burst=" pbad "/" window [ "/" lossbad [ "/" lossgood ] ]
//	         | "crash=" node "@" at [ ":" restart ]
//	         | "jam=" from ":" until [ ":" period ":" duty ]
//	                  [ "@" node ("+" node)* ] [ "~" prob ]
//	         | "skew=" float
//
// until=0 means the jammer never stops; omitting "@..." jams every
// node; "~prob" jams each hit slot with that probability. Examples:
//
//	loss=0.05
//	loss=0.01,crash=3@500,crash=7@200:900,seed=42
//	burst=0.2/64/1/0.001,jam=100:400@0+1+2~0.8
//
// An empty string parses to an inactive profile. The result is
// validated structurally (probability ranges, slot ordering); node
// ranges are checked later at Compile time when n is known.
func ParseProfile(s string) (*Profile, error) {
	p := &Profile{}
	s = strings.TrimSpace(s)
	if s == "" {
		return p, nil
	}
	for _, term := range strings.Split(s, ",") {
		term = strings.TrimSpace(term)
		key, val, ok := strings.Cut(term, "=")
		if !ok || val == "" {
			return nil, fmt.Errorf("fault: term %q is not key=value", term)
		}
		var err error
		switch key {
		case "seed":
			p.Seed, err = strconv.ParseInt(val, 10, 64)
		case "loss":
			p.Loss, err = parseProb(val)
		case "burst":
			err = parseBurst(p, val)
		case "crash":
			err = parseCrash(p, val)
		case "jam":
			err = parseJam(p, val)
		case "skew":
			p.SkewProb, err = parseProb(val)
		default:
			return nil, fmt.Errorf("fault: unknown term %q (want seed, loss, burst, crash, jam, or skew)", key)
		}
		if err != nil {
			return nil, fmt.Errorf("fault: term %q: %w", term, err)
		}
	}
	if err := p.Validate(0); err != nil {
		return nil, err
	}
	return p, nil
}

func parseProb(s string) (float64, error) {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	if v < 0 || v > 1 {
		return 0, fmt.Errorf("probability %g outside [0,1]", v)
	}
	return v, nil
}

func parseBurst(p *Profile, val string) error {
	if p.Burst != nil {
		return fmt.Errorf("duplicate burst term")
	}
	parts := strings.Split(val, "/")
	if len(parts) < 2 || len(parts) > 4 {
		return fmt.Errorf("want pbad/window[/lossbad[/lossgood]]")
	}
	b := &Burst{}
	var err error
	if b.PBad, err = parseProb(parts[0]); err != nil {
		return err
	}
	if b.Window, err = strconv.ParseInt(parts[1], 10, 64); err != nil {
		return err
	}
	if len(parts) > 2 {
		if b.LossBad, err = parseProb(parts[2]); err != nil {
			return err
		}
	}
	if len(parts) > 3 {
		if b.LossGood, err = parseProb(parts[3]); err != nil {
			return err
		}
	}
	p.Burst = b
	return nil
}

func parseCrash(p *Profile, val string) error {
	nodeStr, when, ok := strings.Cut(val, "@")
	if !ok {
		return fmt.Errorf("want node@at[:restart]")
	}
	var c Crash
	var err error
	if c.Node, err = strconv.Atoi(nodeStr); err != nil {
		return err
	}
	atStr, restartStr, hasRestart := strings.Cut(when, ":")
	if c.At, err = strconv.ParseInt(atStr, 10, 64); err != nil {
		return err
	}
	if hasRestart {
		if c.Restart, err = strconv.ParseInt(restartStr, 10, 64); err != nil {
			return err
		}
	}
	p.Crashes = append(p.Crashes, c)
	return nil
}

func parseJam(p *Profile, val string) error {
	var j Jammer
	var err error
	if body, probStr, ok := strings.Cut(val, "~"); ok {
		val = body
		if j.Prob, err = parseProb(probStr); err != nil {
			return err
		}
	}
	if body, nodesStr, ok := strings.Cut(val, "@"); ok {
		val = body
		for _, ns := range strings.Split(nodesStr, "+") {
			v, err := strconv.Atoi(ns)
			if err != nil {
				return err
			}
			j.Nodes = append(j.Nodes, v)
		}
	}
	parts := strings.Split(val, ":")
	if len(parts) != 2 && len(parts) != 4 {
		return fmt.Errorf("want from:until[:period:duty]")
	}
	if j.From, err = strconv.ParseInt(parts[0], 10, 64); err != nil {
		return err
	}
	if j.Until, err = strconv.ParseInt(parts[1], 10, 64); err != nil {
		return err
	}
	if len(parts) == 4 {
		if j.Period, err = strconv.ParseInt(parts[2], 10, 64); err != nil {
			return err
		}
		if j.Duty, err = strconv.ParseInt(parts[3], 10, 64); err != nil {
			return err
		}
	}
	p.Jammers = append(p.Jammers, j)
	return nil
}

// String renders the profile back in ParseProfile's syntax; an
// inactive profile renders as "". Parse(p.String()) reproduces p
// except that unset optional fields take their parsed defaults.
func (p *Profile) String() string {
	if p == nil {
		return ""
	}
	var terms []string
	if p.Loss > 0 {
		terms = append(terms, fmt.Sprintf("loss=%g", p.Loss))
	}
	if b := p.Burst; b != nil {
		terms = append(terms, fmt.Sprintf("burst=%g/%d/%g/%g", b.PBad, b.Window, b.LossBad, b.LossGood))
	}
	for _, c := range p.Crashes {
		if c.Restart != 0 {
			terms = append(terms, fmt.Sprintf("crash=%d@%d:%d", c.Node, c.At, c.Restart))
		} else {
			terms = append(terms, fmt.Sprintf("crash=%d@%d", c.Node, c.At))
		}
	}
	for _, j := range p.Jammers {
		var b strings.Builder
		if j.Period > 0 {
			fmt.Fprintf(&b, "jam=%d:%d:%d:%d", j.From, j.Until, j.Period, j.Duty)
		} else {
			fmt.Fprintf(&b, "jam=%d:%d", j.From, j.Until)
		}
		for i, v := range j.Nodes {
			if i == 0 {
				fmt.Fprintf(&b, "@%d", v)
			} else {
				fmt.Fprintf(&b, "+%d", v)
			}
		}
		if j.Prob > 0 && j.Prob < 1 {
			fmt.Fprintf(&b, "~%g", j.Prob)
		}
		terms = append(terms, b.String())
	}
	if p.SkewProb > 0 {
		terms = append(terms, fmt.Sprintf("skew=%g", p.SkewProb))
	}
	if p.Seed != 0 {
		terms = append(terms, fmt.Sprintf("seed=%d", p.Seed))
	}
	return strings.Join(terms, ",")
}
