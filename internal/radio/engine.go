package radio

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"radiocolor/internal/graph"
	"radiocolor/internal/obs"
)

// Config describes one simulation run.
type Config struct {
	// G is the communication graph (required).
	G *graph.Graph
	// Protocols holds one Protocol per node (required, len == G.N()).
	Protocols []Protocol
	// Wake holds each node's wake-up slot (required, len == G.N(),
	// non-negative). Generate with the schedules in wakeup.go.
	Wake []int64
	// MaxSlots aborts the run after this many slots (default 50M).
	MaxSlots int64
	// Observer receives trace events. nil (the default) disables the
	// seam entirely: the engines branch on nil per event and allocate
	// nothing. Combine several observers with Observers.
	Observer Observer
	// Metrics, when non-nil, receives atomic event counters (see
	// internal/obs). Like Observer, nil costs one branch per event.
	// Metrics is independent of Observer so a shared registry can
	// aggregate across concurrent runs without any fan-out indirection.
	Metrics *obs.Metrics
	// NEstimate is the network-size estimate used for message-size
	// accounting (default G.N()).
	NEstimate int
	// DropProb injects message loss beyond the model: each successful
	// delivery is independently suppressed with this probability.
	// Deliveries suppressed this way are indistinguishable from
	// collisions to the receiver. Used by failure-injection tests.
	DropProb float64
	// DropSeed seeds the deterministic drop and capture coins.
	DropSeed int64
	// CaptureProb models the capture effect, a deviation ABOVE the
	// model: when exactly two neighbors transmit simultaneously, the
	// stronger signal (deterministically, the lower-indexed transmitter)
	// is still decoded with this probability instead of being lost to
	// the collision. Real radios often exhibit capture; the model
	// assumes none. Used by robustness experiments.
	CaptureProb float64
	// Workers > 1 runs the per-slot Send phase on that many goroutines.
	// Results are bit-identical to the sequential engine because every
	// node owns an independent random stream.
	Workers int
}

// Engine executes a Config slot by slot. Use Run for the common case;
// the step-wise API supports protocols that need outside inspection
// between slots (tests, visualizers).
type Engine struct {
	cfg     Config
	n       int
	slot    int64
	awake   []bool
	out     []Message
	order   []int32 // node ids sorted by wake slot
	next    int     // index into order of the next node to wake
	numDone int
	decided []bool
	res     Result

	// Per-slot scratch, reset via the touched list.
	recvCount []int32
	recvMsg   []Message
	touched   []int32
}

// NewEngine validates the configuration and prepares a run.
func NewEngine(cfg Config) (*Engine, error) {
	if cfg.G == nil {
		return nil, errors.New("radio: nil graph")
	}
	n := cfg.G.N()
	if len(cfg.Protocols) != n {
		return nil, fmt.Errorf("radio: %d protocols for %d nodes", len(cfg.Protocols), n)
	}
	if len(cfg.Wake) != n {
		return nil, fmt.Errorf("radio: %d wake slots for %d nodes", len(cfg.Wake), n)
	}
	for i, w := range cfg.Wake {
		if w < 0 {
			return nil, fmt.Errorf("radio: node %d has negative wake slot %d", i, w)
		}
	}
	if cfg.MaxSlots <= 0 {
		cfg.MaxSlots = 50_000_000
	}
	if cfg.NEstimate <= 0 {
		cfg.NEstimate = n
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	e := &Engine{
		cfg:       cfg,
		n:         n,
		awake:     make([]bool, n),
		out:       make([]Message, n),
		decided:   make([]bool, n),
		recvCount: make([]int32, n),
		recvMsg:   make([]Message, n),
	}
	e.order = make([]int32, n)
	for i := range e.order {
		e.order[i] = int32(i)
	}
	sort.SliceStable(e.order, func(a, b int) bool {
		return cfg.Wake[e.order[a]] < cfg.Wake[e.order[b]]
	})
	e.res = Result{
		WakeSlot:   append([]int64(nil), cfg.Wake...),
		DecideSlot: make([]int64, n),
		PerNodeTx:  make([]int64, n),
	}
	for i := range e.res.DecideSlot {
		e.res.DecideSlot[i] = -1
	}
	return e, nil
}

// splitmix64 advances a SplitMix64 state; used for the stateless drop
// coin so that drops are a pure function of (seed, slot, receiver).
func splitmix64(z uint64) uint64 {
	z += 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (e *Engine) dropped(slot int64, receiver int32) bool {
	if e.cfg.DropProb <= 0 {
		return false
	}
	h := splitmix64(splitmix64(uint64(e.cfg.DropSeed)^uint64(slot)) ^ uint64(receiver))
	return float64(h>>11)/float64(1<<53) < e.cfg.DropProb
}

func (e *Engine) captured(slot int64, receiver int32) bool {
	if e.cfg.CaptureProb <= 0 {
		return false
	}
	h := splitmix64(splitmix64(uint64(e.cfg.DropSeed)^uint64(slot)*0x9E3779B9) ^ uint64(receiver) ^ 0xCA97)
	return float64(h>>11)/float64(1<<53) < e.cfg.CaptureProb
}

// Step simulates one slot. It returns false when the run is over
// (everyone decided or the slot limit was reached).
func (e *Engine) Step() bool {
	t := e.slot
	ob := e.cfg.Observer
	met := e.cfg.Metrics
	// Wake-ups scheduled for this slot.
	for e.next < e.n && e.cfg.Wake[e.order[e.next]] == t {
		id := e.order[e.next]
		e.awake[id] = true
		if ob != nil {
			ob.OnWake(t, NodeID(id))
		}
		if met != nil {
			met.AddWakeup()
		}
		e.cfg.Protocols[id].Start(t)
		e.next++
	}

	// Send phase: every awake node ticks and chooses transmit/listen.
	if e.cfg.Workers > 1 {
		e.parallelSend(t)
	} else {
		for i := 0; i < e.n; i++ {
			if e.awake[i] {
				e.out[i] = e.cfg.Protocols[i].Send(t)
			}
		}
	}

	// Resolve phase: count transmitting neighbors at each node.
	for i := 0; i < e.n; i++ {
		msg := e.out[i]
		if msg == nil {
			continue
		}
		e.res.Transmissions++
		e.res.PerNodeTx[i]++
		if bits := msg.Bits(e.cfg.NEstimate); bits > e.res.MaxMessageBits {
			e.res.MaxMessageBits = bits
		}
		if ob != nil {
			ob.OnTransmit(t, NodeID(i), msg)
		}
		if met != nil {
			met.AddTransmission()
		}
		for _, u := range e.cfg.G.Adj(i) {
			if e.recvCount[u] == 0 {
				e.touched = append(e.touched, u)
				e.recvMsg[u] = msg
			}
			e.recvCount[u]++
		}
	}

	// Deliver phase: exactly-one rule at awake listeners.
	for _, u := range e.touched {
		count := e.recvCount[u]
		e.recvCount[u] = 0
		msg := e.recvMsg[u]
		e.recvMsg[u] = nil
		if !e.awake[u] || e.out[u] != nil {
			continue // asleep, or transmitting: hears nothing
		}
		if count >= 2 {
			if count == 2 && e.captured(t, u) {
				// Capture effect: the first-recorded (lowest-indexed)
				// transmitter's signal survives the two-way collision.
				e.res.Deliveries++
				e.res.Captures++
				if ob != nil {
					ob.OnDeliver(t, NodeID(u), msg)
				}
				if met != nil {
					met.AddDelivery()
					met.AddCapture()
				}
				e.cfg.Protocols[u].Recv(t, msg)
				continue
			}
			e.res.Collisions++
			if ob != nil {
				ob.OnCollision(t, NodeID(u), int(count))
			}
			if met != nil {
				met.AddCollision()
			}
			continue
		}
		if e.dropped(t, u) {
			if met != nil {
				met.AddDrop()
			}
			continue
		}
		e.res.Deliveries++
		if ob != nil {
			ob.OnDeliver(t, NodeID(u), msg)
		}
		if met != nil {
			met.AddDelivery()
		}
		e.cfg.Protocols[u].Recv(t, msg)
	}
	e.touched = e.touched[:0]
	for i := 0; i < e.n; i++ {
		e.out[i] = nil
	}

	// Decision detection.
	for i := 0; i < e.n; i++ {
		if !e.decided[i] && e.awake[i] && e.cfg.Protocols[i].Done() {
			e.decided[i] = true
			e.numDone++
			e.res.DecideSlot[i] = t
			if ob != nil {
				ob.OnDecide(t, NodeID(i))
			}
			if met != nil {
				met.AddDecision()
			}
		}
	}
	if ob != nil {
		ob.OnSlot(t)
	}
	if met != nil {
		met.AddSlot()
	}
	e.slot++
	simulatedSlots.Add(1)
	e.res.Slots = e.slot
	if e.numDone == e.n {
		e.res.AllDone = true
		return false
	}
	return e.slot < e.cfg.MaxSlots
}

func (e *Engine) parallelSend(t int64) {
	workers := e.cfg.Workers
	chunk := (e.n + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > e.n {
			hi = e.n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				if e.awake[i] {
					e.out[i] = e.cfg.Protocols[i].Send(t)
				}
			}
		}(lo, hi)
	}
	wg.Wait()
}

// Result returns the statistics accumulated so far. It is valid after
// the run finishes (Step returned false) and between steps.
func (e *Engine) Result() *Result { return &e.res }

// Slot returns the next slot to be simulated.
func (e *Engine) Slot() int64 { return e.slot }

// Run executes the configuration to completion and returns the result.
func Run(cfg Config) (*Result, error) {
	return RunContext(context.Background(), cfg)
}

// cancelCheckMask gates the cancellation poll in the run loops: the
// context is consulted once every 1024 slots, keeping the select off
// the per-slot hot path (a full slot simulates n Send calls, so 1024
// slots bound the cancellation latency to well under a millisecond of
// wall time at realistic sizes).
const cancelCheckMask = 1024 - 1

// RunContext executes the configuration to completion, polling ctx
// every 1024 slots. On cancellation it returns ctx.Err() and no result.
func RunContext(ctx context.Context, cfg Config) (*Result, error) {
	e, err := NewEngine(cfg)
	if err != nil {
		return nil, err
	}
	done := ctx.Done()
	for e.Step() {
		if done != nil && e.slot&cancelCheckMask == 0 {
			select {
			case <-done:
				return nil, ctx.Err()
			default:
			}
		}
	}
	return e.Result(), nil
}
