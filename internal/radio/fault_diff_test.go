package radio_test

import (
	"reflect"
	"testing"

	"radiocolor/internal/core"
	"radiocolor/internal/fault"
	"radiocolor/internal/radio"
)

// runFaulted runs the real coloring protocol on c with the given fault
// profile (nil = fault-free) and returns the Result plus final colors.
func runFaulted(t *testing.T, c diffCase, prof *fault.Profile, workers int) (*radio.Result, []int32) {
	t.Helper()
	par := diffParams(c.g)
	nodes, protos := core.Nodes(c.g.N(), c.seed, par, core.Ablation{})
	cfg := radio.Config{
		G: c.g, Protocols: protos, Wake: c.wake,
		MaxSlots: diffBudget, NEstimate: par.N,
		Workers: workers,
	}
	if prof != nil {
		inj, err := prof.Compile(c.g.N())
		if err != nil {
			t.Fatal(err)
		}
		cfg.Faults = inj
	}
	res, err := radio.Run(cfg)
	if err != nil {
		t.Fatalf("%s workers=%d: %v", c.name, workers, err)
	}
	colors := make([]int32, len(nodes))
	for i, v := range nodes {
		colors[i] = v.Color()
	}
	return res, colors
}

// chaosProfile exercises every fault class the aligned engine supports
// at once: i.i.d. loss, burst fading, final crashes, a crash+restart,
// and a probabilistic jammer.
func chaosProfile(seed int64) *fault.Profile {
	return &fault.Profile{
		Seed:  seed,
		Loss:  0.05,
		Burst: &fault.Burst{PBad: 0.1, Window: 64},
		Crashes: []fault.Crash{
			{Node: 3, At: 200},
			{Node: 17, At: 500, Restart: 900},
			{Node: 29, At: 50},
		},
		Jammers: []fault.Jammer{
			{Nodes: []int{1, 5, 9}, From: 100, Until: 1200, Period: 16, Duty: 4, Prob: 0.8},
		},
	}
}

// TestFaultDeterminismAcrossWorkers pins "same seed, same chaos": a
// fault-injected run is bit-identical at Workers ∈ {1, 4}, because every
// fault coin is a pure function of (seed, slot, link) and crash events
// apply before the slot's sends.
func TestFaultDeterminismAcrossWorkers(t *testing.T) {
	cases := diffCases(t)[:10]
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			prof := chaosProfile(c.seed)
			res1, col1 := runFaulted(t, c, prof, 1)
			res4, col4 := runFaulted(t, c, prof, 4)
			if !reflect.DeepEqual(res1, res4) {
				t.Errorf("results diverge across workers:\n  w1: %+v\n  w4: %+v", res1, res4)
			}
			if !reflect.DeepEqual(col1, col4) {
				t.Errorf("colors diverge across workers")
			}
			if res1.Lost == 0 && res1.Jammed == 0 && res1.Crashes == 0 {
				t.Error("chaos profile injected nothing; test is vacuous")
			}
		})
	}
}

// TestFaultSeamInert pins the differential contract of the seam itself:
// with Faults nil — and with an *active but never-firing* injector — the
// engine's output is bit-identical to the fault-free kernel at
// Workers ∈ {1, 4}. The inert injector (a crash scheduled far past the
// slot budget) walks the full fault code path every slot and must still
// change nothing.
func TestFaultSeamInert(t *testing.T) {
	inert := &fault.Profile{
		Crashes: []fault.Crash{{Node: 0, At: 1 << 40}},
	}
	cases := diffCases(t)[:6]
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			base1, colBase1 := runFaulted(t, c, nil, 1)
			base4, colBase4 := runFaulted(t, c, nil, 4)
			if !reflect.DeepEqual(base1, base4) || !reflect.DeepEqual(colBase1, colBase4) {
				t.Fatalf("fault-free runs diverge across workers")
			}
			for _, workers := range []int{1, 4} {
				res, col := runFaulted(t, c, inert, workers)
				if !reflect.DeepEqual(res, base1) {
					t.Errorf("workers=%d: inert injector changed the result:\n  base:  %+v\n  inert: %+v", workers, base1, res)
				}
				if !reflect.DeepEqual(col, colBase1) {
					t.Errorf("workers=%d: inert injector changed the colors", workers)
				}
			}
		})
	}
}
