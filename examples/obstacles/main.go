// Obstacles: the Fig. 1 scenario. Walls cut radio links, so the network
// is no longer a unit disk graph — but it remains a bounded independence
// graph with only modestly larger κ₁/κ₂, and the algorithm keeps working
// with guarantees degrading gracefully in κ₂.
//
//	go run ./examples/obstacles
package main

import (
	"fmt"
	"log"

	"radiocolor/internal/core"
	"radiocolor/internal/experiment"
	"radiocolor/internal/graph"
	"radiocolor/internal/radio"
	"radiocolor/internal/topology"
	"radiocolor/internal/verify"
)

func main() {
	cfg := topology.UDGConfig{N: 160, Side: 7, Radius: 1.2, Seed: 21}
	open := topology.RandomUDG(cfg)
	walled := topology.BIGWithWalls(cfg, 40)

	fmt.Println("same 160-node placement, without and with 40 wall obstacles:")
	for _, d := range []*topology.Deployment{open, walled} {
		k := d.G.Kappa(graph.KappaOptions{Budget: 200_000, MaxNeighborhood: 150})
		fmt.Printf("\n%s\n", d.Name)
		fmt.Printf("  links: %d, Δ=%d, κ₁=%d, κ₂=%d\n", d.G.M(), d.G.MaxDegree(), k.K1, k.K2)

		par := experiment.MeasureParams(d)
		run, err := experiment.RunCore(d, par,
			radio.WakeSynchronous(d.N()), 5, 0x7FFFFFFF, core.Ablation{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  coloring: %v\n", run.Report)
		fmt.Printf("  decision time: max T_v = %d slots\n", run.Radio.MaxLatency())
		if viol := verify.CheckLocality(d.G, run.Colors, par.Kappa2); len(viol) == 0 {
			fmt.Println("  locality bound holds at every node")
		} else {
			fmt.Printf("  locality violations: %d\n", len(viol))
		}
	}
	fmt.Println("\nwalls sever links and deform the disk-shaped transmission ranges,")
	fmt.Println("so the result is no unit disk graph — but κ₁/κ₂ change only modestly and")
	fmt.Println("the BIG model absorbs the obstacles without any change to the algorithm.")
}
