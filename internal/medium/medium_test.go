package medium

import (
	"reflect"
	"testing"
)

// csr builds the CSR view of an undirected graph on n nodes from edge
// pairs, mirroring graph.CSR's layout without importing it.
func csr(n int, pairs [][2]int32) (offsets, edges []int32) {
	adj := make([][]int32, n)
	for _, p := range pairs {
		adj[p[0]] = append(adj[p[0]], p[1])
		adj[p[1]] = append(adj[p[1]], p[0])
	}
	offsets = make([]int32, n+1)
	for i, row := range adj {
		offsets[i+1] = offsets[i] + int32(len(row))
		edges = append(edges, row...)
	}
	return offsets, edges
}

func allListening(int32) bool { return true }

func TestGraphThresholdBindValidation(t *testing.T) {
	if _, err := (GraphThreshold{}).Bind(Env{N: 3}); err == nil {
		t.Error("graph medium bound without a CSR adjacency")
	}
}

func TestGraphThresholdSingleTransmitter(t *testing.T) {
	// Path 0-1-2: node 0 transmits, both listeners but only its
	// neighbor 1 hears it.
	off, ed := csr(3, [][2]int32{{0, 1}, {1, 2}})
	inst, err := (GraphThreshold{}).Bind(Env{N: 3, Offsets: off, Edges: ed})
	if err != nil {
		t.Fatal(err)
	}
	recs, st := inst.Resolve(0, []int32{0}, allListening, nil)
	want := []Reception{{To: 1, From: 0}}
	if !reflect.DeepEqual(recs, want) {
		t.Errorf("receptions = %v, want %v", recs, want)
	}
	if st != (Stats{}) {
		t.Errorf("stats = %+v, want zero", st)
	}
}

func TestGraphThresholdCollision(t *testing.T) {
	// Path 0-1-2 with 0 and 2 transmitting: node 1 hears two neighbors,
	// so the transmissions annihilate.
	off, ed := csr(3, [][2]int32{{0, 1}, {1, 2}})
	inst, err := (GraphThreshold{}).Bind(Env{N: 3, Offsets: off, Edges: ed})
	if err != nil {
		t.Fatal(err)
	}
	recs, st := inst.Resolve(0, []int32{0, 2}, allListening, nil)
	if len(recs) != 0 {
		t.Errorf("collision slot delivered %v", recs)
	}
	if st.Collisions != 1 {
		t.Errorf("Collisions = %d, want 1", st.Collisions)
	}
}

func TestGraphThresholdRespectsListening(t *testing.T) {
	// Triangle: 0 transmits; 2 is not listening (asleep or itself a
	// transmitter from the engine's point of view) so only 1 receives.
	off, ed := csr(3, [][2]int32{{0, 1}, {1, 2}, {0, 2}})
	inst, err := (GraphThreshold{}).Bind(Env{N: 3, Offsets: off, Edges: ed})
	if err != nil {
		t.Fatal(err)
	}
	recs, st := inst.Resolve(0, []int32{0}, func(u int32) bool { return u != 2 }, nil)
	want := []Reception{{To: 1, From: 0}}
	if !reflect.DeepEqual(recs, want) {
		t.Errorf("receptions = %v, want %v", recs, want)
	}
	if st.Collisions != 0 {
		t.Errorf("non-listener counted as collision: %+v", st)
	}
}

func TestGraphThresholdScratchResets(t *testing.T) {
	// The count array must return to all-zero between slots: a collision
	// slot followed by a clean slot must behave like a fresh instance.
	off, ed := csr(3, [][2]int32{{0, 1}, {1, 2}})
	inst, err := (GraphThreshold{}).Bind(Env{N: 3, Offsets: off, Edges: ed})
	if err != nil {
		t.Fatal(err)
	}
	inst.Resolve(0, []int32{0, 2}, allListening, nil)
	recs, st := inst.Resolve(1, []int32{0}, allListening, nil)
	if len(recs) != 1 || recs[0] != (Reception{To: 1, From: 0}) || st.Collisions != 0 {
		t.Errorf("stale scratch after a collision slot: recs=%v st=%+v", recs, st)
	}
}

func TestMultiChannelBindValidation(t *testing.T) {
	off, ed := csr(2, [][2]int32{{0, 1}})
	if _, err := (MultiChannel{K: 0}).Bind(Env{N: 2, Offsets: off, Edges: ed}); err == nil {
		t.Error("0 channels bound")
	}
	if _, err := (MultiChannel{K: 2}).Bind(Env{N: 2}); err == nil {
		t.Error("multichannel bound without a CSR adjacency")
	}
}

func TestMultiChannelSameChannelRequired(t *testing.T) {
	// On k channels a lone transmitter reaches its neighbor only when
	// their hops coincide — about 1/k of the slots, never all of them.
	off, ed := csr(2, [][2]int32{{0, 1}})
	inst, err := (MultiChannel{K: 4, HopSeed: 13}).Bind(Env{N: 2, Offsets: off, Edges: ed})
	if err != nil {
		t.Fatal(err)
	}
	const slots = 400
	got := 0
	for s := int64(0); s < slots; s++ {
		recs, _ := inst.Resolve(s, []int32{0}, allListening, nil)
		got += len(recs)
	}
	if got < slots/8 || got > slots/2 {
		t.Errorf("deliveries = %d over %d slots on 4 channels, expected ≈ %d", got, slots, slots/4)
	}
}

func TestMultiChannelDeterministic(t *testing.T) {
	off, ed := csr(3, [][2]int32{{0, 1}, {1, 2}})
	run := func() []Reception {
		inst, err := (MultiChannel{K: 3, HopSeed: 17}).Bind(Env{N: 3, Offsets: off, Edges: ed})
		if err != nil {
			t.Fatal(err)
		}
		var all []Reception
		for s := int64(0); s < 200; s++ {
			recs, _ := inst.Resolve(s, []int32{0, 2}, allListening, nil)
			all = append(all, recs...)
		}
		return all
	}
	if a, b := run(), run(); !reflect.DeepEqual(a, b) {
		t.Error("multichannel medium not deterministic across instances")
	}
}

func TestMultiChannelHopSeedFallsBackToEnvSeed(t *testing.T) {
	off, ed := csr(2, [][2]int32{{0, 1}})
	trace := func(m MultiChannel, envSeed int64) []int {
		inst, err := m.Bind(Env{N: 2, Offsets: off, Edges: ed, Seed: envSeed})
		if err != nil {
			t.Fatal(err)
		}
		var tr []int
		for s := int64(0); s < 100; s++ {
			recs, _ := inst.Resolve(s, []int32{0}, allListening, nil)
			tr = append(tr, len(recs))
		}
		return tr
	}
	explicit := trace(MultiChannel{K: 4, HopSeed: 99}, 1)
	fallback := trace(MultiChannel{K: 4}, 99)
	if !reflect.DeepEqual(explicit, fallback) {
		t.Error("HopSeed 0 should fall back to the environment seed")
	}
}
