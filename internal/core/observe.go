package core

import "radiocolor/internal/obs"

// internal/obs mirrors the protocol's phase enum by value so that the
// stdlib-only obs package needs no import of core (core imports radio,
// radio imports obs — an import back into core would cycle). The
// conversion below is therefore a plain integer cast; the pinning test
// in observe_test.go keeps the two enums aligned.

// ObservePhases installs a phase hook on every node that forwards
// transitions into c (metrics phase gauges, trace phase events and the
// per-phase timeline, whichever are present). Call before the run
// starts. A nil or empty collector installs nothing, keeping the nodes
// on the hook-free fast path.
func ObservePhases(nodes []*Node, c *obs.Collector) {
	if c == nil || (c.Metrics == nil && c.Tracer == nil && c.Timeline == nil) {
		return
	}
	hook := func(slot int64, node int32, from, to Phase, class int32) {
		c.OnPhase(slot, node, obs.Phase(from), obs.Phase(to), class)
	}
	for _, v := range nodes {
		v.SetPhaseHook(hook)
	}
}
