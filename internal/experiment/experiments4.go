package experiment

import (
	"fmt"

	"radiocolor/internal/core"
	"radiocolor/internal/medium"
	"radiocolor/internal/radio"
	"radiocolor/internal/stats"
	"radiocolor/internal/topology"
	"radiocolor/internal/verify"
)

// E25CrossModel runs the paper's protocol on IDENTICAL unit-disk
// deployments under three reception models — the paper's graph rule,
// the physical SINR model (noise floor matched so the decode range
// coincides with the unit-disk radius), and 2-channel random hopping —
// and compares correctness, palette size, time and energy. The
// deployment, wake-up schedule and every protocol coin are fixed per
// trial; only the medium differs, so any spread in the columns is the
// reception model's doing. The interesting cell is SINR: the protocol's
// analysis assumes the graph rule, so surviving cumulative interference
// and capture (deliveries the graph rule would have annihilated) is an
// out-of-model robustness result, not a theorem.
func E25CrossModel(o Options) *stats.Table {
	o = o.normalized()
	t := stats.NewTable("E25: reception models — graph rule vs SINR vs multi-channel on one deployment",
		"medium", "correct", "mean colors", "mean maxT", "tx/node", "captures", "drowned")
	n := o.scale(110, 40)
	const radius = 1.2
	models := []string{"graph", "sinr (matched)", "multichannel k=2"}
	type trialRes struct {
		ok                bool
		colors, maxT      float64
		txPerNode         float64
		captures, drowned float64
	}
	grid := parTrials(o, "E25", len(models), o.Trials, func(mi, tr int) trialRes {
		// The seed deliberately ignores mi: every model sees the same
		// deployment, schedule and protocol randomness.
		seed := trialSeed(o.Seed, 2500, tr)
		d := topology.RandomUDG(topology.UDGConfig{N: n, Side: 6, Radius: radius, Seed: seed})
		par := MeasureParams(d)
		nodes, protos := core.Nodes(d.N(), seed, par, core0)
		// The budget is sized for the slowest arm: channel hopping slows
		// the counter-paced protocol roughly k-fold (E21), and finished
		// runs stop early regardless.
		cfg := radio.Config{
			G: d.G, Protocols: protos, Wake: radio.WakeUniform(d.N(), par.WaitSlots()/4, seed),
			MaxSlots: 40 * defaultBudget(par), NEstimate: par.N,
		}
		var res *radio.Result
		var err error
		switch mi {
		case 0:
			res, err = radio.Run(cfg)
		case 1:
			// 5% margin past the radius keeps border links decodable
			// under mild interference instead of exactly on threshold.
			m := medium.SINR{Alpha: 4, Beta: 1.5,
				NoiseDBM: medium.MatchedNoiseDBM(0, 1.5, 4, radius*1.05)}
			cfg.Medium, err = m.Bind(medium.Env{N: d.N(), Points: d.Points})
			if err == nil {
				res, err = radio.Run(cfg)
			}
		default:
			res, err = radio.RunMultiChannel(cfg, 2, seed)
		}
		if err != nil {
			panic(err)
		}
		cs := make([]int32, d.N())
		for i, v := range nodes {
			cs[i] = v.Color()
		}
		var r trialRes
		if res.AllDone && verify.Check(d.G, cs).OK() {
			r.ok = true
			r.maxT = float64(res.MaxLatency())
			palette := map[int32]bool{}
			for _, c := range cs {
				palette[c] = true
			}
			r.colors = float64(len(palette))
		}
		r.txPerNode = float64(res.Transmissions) / float64(d.N())
		r.captures = float64(res.Captures)
		r.drowned = float64(res.Drowned)
		return r
	})
	for mi, name := range models {
		correct := 0
		var colors, ts, tx, caps, drn []float64
		for _, r := range grid[mi] {
			if r.ok {
				correct++
				colors = append(colors, r.colors)
				ts = append(ts, r.maxT)
			}
			tx = append(tx, r.txPerNode)
			caps = append(caps, r.captures)
			drn = append(drn, r.drowned)
		}
		t.AddRow(name, fmt.Sprintf("%d/%d", correct, o.Trials),
			stats.Mean(colors), stats.Mean(ts), stats.Mean(tx),
			stats.Mean(caps), stats.Mean(drn))
	}
	return t
}
