package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"radiocolor/internal/obs"
)

func openFile(t *testing.T, dir string, opt FileOptions) *File {
	t.Helper()
	s, err := OpenFile(dir, opt)
	if err != nil {
		t.Fatalf("OpenFile(%s): %v", dir, err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestFileReopenPersists(t *testing.T) {
	dir := t.TempDir()
	s := openFile(t, dir, FileOptions{})
	a := mustCreate(t, s, &Job{Spec: json.RawMessage(`{"n":64}`)})
	b := mustCreate(t, s, &Job{})
	if _, err := s.Claim("r1", base, time.Hour); err != nil {
		t.Fatal(err)
	}
	if err := s.Finish(a.ID, "r1", StateDone, json.RawMessage(`{"colors":5}`), "", base); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := openFile(t, dir, FileOptions{})
	got, err := s2.Get(a.ID)
	if err != nil || got.State != StateDone || string(got.Result) != `{"colors":5}` {
		t.Fatalf("reopened job a: %+v, %v", got, err)
	}
	if string(got.Spec) != `{"n":64}` {
		t.Fatalf("spec lost across reopen: %s", got.Spec)
	}
	if got, _ := s2.Get(b.ID); got.State != StateQueued {
		t.Fatalf("reopened job b: %+v", got)
	}
	// Sequence continues, no id reuse.
	c := mustCreate(t, s2, &Job{})
	if c.ID != "j-000003" {
		t.Fatalf("seq after reopen: %s", c.ID)
	}
}

func TestFileTornTailRepaired(t *testing.T) {
	dir := t.TempDir()
	s := openFile(t, dir, FileOptions{})
	a := mustCreate(t, s, &Job{})
	mustCreate(t, s, &Job{})
	s.Close()

	// Simulate a writer killed mid-append: a partial record with no
	// trailing newline.
	logPath := filepath.Join(dir, "log-0.jsonl")
	f, err := os.OpenFile(logPath, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"job":{"id":"j-000001","seq":1,"kind":"job","state":"do`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	var warns []string
	ctrl := obs.NewControl()
	s2 := openFile(t, dir, FileOptions{Control: ctrl, Warn: func(m string) { warns = append(warns, m) }})
	got, err := s2.Get(a.ID)
	if err != nil || got.State != StateQueued {
		t.Fatalf("job after torn tail: %+v, %v", got, err)
	}
	if len(warns) != 1 || !strings.Contains(warns[0], "torn") {
		t.Fatalf("warnings = %q", warns)
	}
	if ctrl.Snapshot().TornTails != 1 {
		t.Fatalf("torn-tail counter = %d", ctrl.Snapshot().TornTails)
	}
	// The tail was physically truncated, so new appends land on a clean
	// line boundary and survive a further reopen.
	mustCreate(t, s2, &Job{})
	s2.Close()
	s3 := openFile(t, dir, FileOptions{})
	all, err := s3.List(Filter{})
	if err != nil || len(all) != 3 {
		t.Fatalf("after repair+append: %d records, %v", len(all), err)
	}
}

func TestFileMalformedLineSkippedWithWarning(t *testing.T) {
	dir := t.TempDir()
	s := openFile(t, dir, FileOptions{})
	mustCreate(t, s, &Job{})
	s.Close()

	logPath := filepath.Join(dir, "log-0.jsonl")
	f, _ := os.OpenFile(logPath, os.O_WRONLY|os.O_APPEND, 0)
	f.WriteString("this is not json\n")
	f.Close()

	var warns []string
	s2 := openFile(t, dir, FileOptions{Warn: func(m string) { warns = append(warns, m) }})
	all, err := s2.List(Filter{})
	if err != nil || len(all) != 1 {
		t.Fatalf("after malformed line: %d records, %v", len(all), err)
	}
	if len(warns) != 1 || !strings.Contains(warns[0], "malformed") {
		t.Fatalf("warnings = %q", warns)
	}
}

func TestFileCompactionRotatesGenerations(t *testing.T) {
	dir := t.TempDir()
	// Tiny threshold: every few records trigger a compaction.
	s := openFile(t, dir, FileOptions{CompactBytes: 512, Control: obs.NewControl()})
	var ids []string
	for i := 0; i < 20; i++ {
		j := mustCreate(t, s, &Job{Spec: json.RawMessage(fmt.Sprintf(`{"i":%d}`, i))})
		ids = append(ids, j.ID)
	}
	if s.gen == 0 {
		t.Fatal("no compaction despite tiny threshold")
	}
	// Exactly one generation's files remain.
	ents, _ := os.ReadDir(dir)
	var logs, snaps []string
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), "log-") {
			logs = append(logs, e.Name())
		}
		if strings.HasPrefix(e.Name(), "snapshot-") {
			snaps = append(snaps, e.Name())
		}
	}
	if len(logs) != 1 || len(snaps) != 1 {
		t.Fatalf("stale generation files: logs=%v snaps=%v", logs, snaps)
	}
	s.Close()

	s2 := openFile(t, dir, FileOptions{})
	for i, id := range ids {
		j, err := s2.Get(id)
		if err != nil {
			t.Fatalf("Get(%s) after compaction: %v", id, err)
		}
		if want := fmt.Sprintf(`{"i":%d}`, i); string(j.Spec) != want {
			t.Fatalf("spec %s = %s, want %s", id, j.Spec, want)
		}
	}
}

func TestFileCrossHandleVisibility(t *testing.T) {
	dir := t.TempDir()
	a := openFile(t, dir, FileOptions{})
	b := openFile(t, dir, FileOptions{})

	j := mustCreate(t, a, &Job{})
	got, err := b.Get(j.ID)
	if err != nil || got.State != StateQueued {
		t.Fatalf("handle b missed create: %+v, %v", got, err)
	}

	claimed, err := b.Claim("rb", base, time.Hour)
	if err != nil || claimed == nil || claimed.ID != j.ID {
		t.Fatalf("handle b claim: %+v, %v", claimed, err)
	}
	// Handle a sees the live lease and cannot double-claim or commit.
	if got, _ := a.Claim("ra", base.Add(time.Second), time.Hour); got != nil {
		t.Fatalf("double claim across handles: %+v", got)
	}
	if err := a.Finish(j.ID, "ra", StateDone, nil, "", base); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("foreign finish across handles: %v", err)
	}
	if err := b.Finish(j.ID, "rb", StateDone, nil, "", base); err != nil {
		t.Fatalf("owner finish: %v", err)
	}
	if got, _ := a.Get(j.ID); got.State != StateDone {
		t.Fatalf("handle a missed finish: %+v", got)
	}
}

func TestFileCrossHandleCompactionReload(t *testing.T) {
	dir := t.TempDir()
	a := openFile(t, dir, FileOptions{CompactBytes: 256})
	b := openFile(t, dir, FileOptions{CompactBytes: 256})
	var last *Job
	for i := 0; i < 10; i++ {
		last = mustCreate(t, a, &Job{})
	}
	if a.gen == 0 {
		t.Fatal("no compaction")
	}
	// b's cached generation is stale; it must follow the MANIFEST flip.
	got, err := b.Get(last.ID)
	if err != nil || got.State != StateQueued {
		t.Fatalf("handle b across compaction: %+v, %v", got, err)
	}
	if b.gen != a.gen {
		t.Fatalf("handle b generation %d, want %d", b.gen, a.gen)
	}
	// And b can mutate in the new generation.
	if _, err := b.Claim("rb", base, time.Hour); err != nil {
		t.Fatal(err)
	}
	if got, _ := a.Get("j-000001"); got.State != StateRunning {
		t.Fatalf("handle a missed post-compaction claim: %+v", got)
	}
}
