package radio

// Energy accounting. Sensor-network deployments care about the energy
// spent during initialization as much as about its latency (the paper's
// companion work [19] studies exactly this trade-off). The simulator
// already records per-node transmissions; combined with the wake-up
// schedule this yields a standard two-state energy model: a node pays
// TxCost per transmitting slot and ListenCost per awake listening slot
// (sleeping is free — in the unstructured model a node cannot be woken
// by messages, so sleeping truly costs nothing).

// EnergyModel prices the radio states, in arbitrary units per slot.
// Typical sensor radios listen at a comparable order of magnitude to
// transmitting; DefaultEnergyModel reflects that.
type EnergyModel struct {
	TxCost     float64
	ListenCost float64
}

// DefaultEnergyModel returns tx = 1.0, listen = 0.5 per slot.
func DefaultEnergyModel() EnergyModel {
	return EnergyModel{TxCost: 1, ListenCost: 0.5}
}

// PerNodeEnergy returns the energy each node spent during the run: the
// node is awake from its wake slot (or its decision slot handling —
// nodes keep running after deciding, which the model charges, matching
// the protocol: colored nodes continue transmitting until the protocol
// is stopped).
func (r *Result) PerNodeEnergy(m EnergyModel) []float64 {
	out := make([]float64, len(r.WakeSlot))
	for v := range out {
		awake := r.Slots - r.WakeSlot[v]
		if awake < 0 {
			awake = 0
		}
		tx := r.PerNodeTx[v]
		listen := awake - tx
		if listen < 0 {
			listen = 0
		}
		out[v] = float64(tx)*m.TxCost + float64(listen)*m.ListenCost
	}
	return out
}

// TotalEnergy sums PerNodeEnergy.
func (r *Result) TotalEnergy(m EnergyModel) float64 {
	total := 0.0
	for _, e := range r.PerNodeEnergy(m) {
		total += e
	}
	return total
}
