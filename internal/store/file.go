package store

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"log"
	"os"
	"path/filepath"
	"sync"
	"syscall"
	"time"

	"radiocolor/internal/obs"
)

// File is the durable Store: an embedded append-log + snapshot store
// in pure Go, safe for N colord processes sharing one directory.
//
// Layout:
//
//	dir/LOCK             flock target; every operation holds it exclusively
//	dir/MANIFEST         {"generation":N}, replaced atomically at compaction
//	dir/snapshot-N.json  full state at the start of generation N
//	dir/log-N.jsonl      one record per mutation since snapshot N
//
// Every mutation appends one JSONL record under the flock, so all
// processes observe a single serialized history; each handle keeps an
// in-memory replica of the table and, still under the lock, replays
// whatever the log grew by since its last operation. When the log
// exceeds CompactBytes the mutating handle compacts: it writes the
// next generation's snapshot, starts a fresh log, and flips MANIFEST —
// other handles notice the generation change and reload. A torn final
// log line (a writer killed mid-append) is truncated away on the next
// operation; the record never committed, so nothing is lost.
//
// Durability model: records are in the OS page cache the moment the
// append returns, which survives SIGKILL of the process; Sync upgrades
// that to fsync-per-append, surviving power loss at a large throughput
// cost.
type File struct {
	dir string
	opt FileOptions

	mu    sync.Mutex // serializes handle use within the process
	lockf *os.File   // flock target, held only inside operations
	logf  *os.File   // current generation's log
	t     *table
	gen   uint64
	off   int64 // bytes of log consumed (== size after refresh)
}

// FileOptions tunes a File store. The zero value is usable.
type FileOptions struct {
	// Control receives store/lease metrics. May be nil.
	Control *obs.Control
	// CompactBytes triggers log→snapshot compaction when the log grows
	// past it. Defaults to 4 MiB.
	CompactBytes int64
	// Sync fsyncs the log after every append (power-loss durability;
	// SIGKILL safety does not need it).
	Sync bool
	// Warn receives one-line repair notices (torn tails, skipped
	// malformed records). Defaults to log.Printf.
	Warn func(msg string)
}

// manifest is the MANIFEST file body.
type manifest struct {
	Generation uint64 `json:"generation"`
}

// logRecord is one log line: a full job record (last one for an id
// wins at replay) or a prune tombstone.
type logRecord struct {
	Job   *Job     `json:"job,omitempty"`
	Prune []string `json:"prune,omitempty"`
}

// snapshotFile is the snapshot-N.json body.
type snapshotFile struct {
	Seq  uint64 `json:"seq"`
	Jobs []*Job `json:"jobs"`
}

// OpenFile opens (creating if needed) the store directory.
func OpenFile(dir string, opt FileOptions) (*File, error) {
	if opt.CompactBytes <= 0 {
		opt.CompactBytes = 4 << 20
	}
	if opt.Warn == nil {
		opt.Warn = func(msg string) { log.Print(msg) }
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	lockf, err := os.OpenFile(filepath.Join(dir, "LOCK"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &File{dir: dir, opt: opt, lockf: lockf, t: newTable(opt.Control)}
	if err := s.flock(); err != nil {
		lockf.Close()
		return nil, err
	}
	defer s.funlock()
	if _, err := os.Stat(s.manifestPath()); errors.Is(err, fs.ErrNotExist) {
		if err := s.writeManifest(0); err != nil {
			lockf.Close()
			return nil, err
		}
	}
	if err := s.refresh(); err != nil {
		lockf.Close()
		return nil, err
	}
	return s, nil
}

func (s *File) manifestPath() string { return filepath.Join(s.dir, "MANIFEST") }
func (s *File) logPath(gen uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("log-%d.jsonl", gen))
}
func (s *File) snapshotPath(gen uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("snapshot-%d.json", gen))
}

// flock takes the exclusive cross-process lock (blocking).
func (s *File) flock() error {
	for {
		err := syscall.Flock(int(s.lockf.Fd()), syscall.LOCK_EX)
		if err == nil {
			return nil
		}
		if err != syscall.EINTR {
			return fmt.Errorf("store: flock %s: %w", s.dir, err)
		}
	}
}

func (s *File) funlock() {
	_ = syscall.Flock(int(s.lockf.Fd()), syscall.LOCK_UN)
}

// writeManifest atomically replaces MANIFEST. Caller holds the flock.
func (s *File) writeManifest(gen uint64) error {
	b, _ := json.Marshal(manifest{Generation: gen})
	return s.writeAtomic(s.manifestPath(), append(b, '\n'))
}

func (s *File) readManifest() (uint64, error) {
	b, err := os.ReadFile(s.manifestPath())
	if err != nil {
		return 0, fmt.Errorf("store: manifest: %w", err)
	}
	var m manifest
	if err := json.Unmarshal(b, &m); err != nil {
		return 0, fmt.Errorf("store: manifest %s: %w", s.manifestPath(), err)
	}
	return m.Generation, nil
}

// writeAtomic writes via a temp file + rename so readers never see a
// partial file.
func (s *File) writeAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if s.opt.Sync {
		if f, err := os.OpenFile(tmp, os.O_RDWR, 0); err == nil {
			_ = f.Sync()
			f.Close()
		}
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// refresh brings the in-memory table up to date with the shared
// history. Caller holds the flock.
func (s *File) refresh() error {
	gen, err := s.readManifest()
	if err != nil {
		return err
	}
	if s.logf == nil || gen != s.gen {
		if err := s.loadGeneration(gen); err != nil {
			return err
		}
		return nil
	}
	return s.replayNew()
}

// loadGeneration rebuilds the table from generation gen's snapshot and
// full log. Caller holds the flock.
func (s *File) loadGeneration(gen uint64) error {
	t := newTable(s.opt.Control)
	snap, err := os.ReadFile(s.snapshotPath(gen))
	if err == nil {
		var sf snapshotFile
		if err := json.Unmarshal(snap, &sf); err != nil {
			return fmt.Errorf("store: snapshot %s: %w", s.snapshotPath(gen), err)
		}
		for _, j := range sf.Jobs {
			t.put(j)
		}
		if sf.Seq > t.seq {
			t.seq = sf.Seq
		}
	} else if !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("store: %w", err)
	}
	logf, err := os.OpenFile(s.logPath(gen), os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if s.logf != nil {
		s.logf.Close()
	}
	s.logf, s.t, s.gen, s.off = logf, t, gen, 0
	return s.replayNew()
}

// replayNew applies log records appended since s.off, repairing a torn
// tail. Caller holds the flock, so no writer is mid-append: an
// unterminated final line can only be the debris of a killed process.
func (s *File) replayNew() error {
	st, err := s.logf.Stat()
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	size := st.Size()
	if size == s.off {
		return nil
	}
	if size < s.off {
		// Cannot happen within a generation; reload defensively.
		return s.loadGeneration(s.gen)
	}
	buf := make([]byte, size-s.off)
	if _, err := s.logf.ReadAt(buf, s.off); err != nil {
		return fmt.Errorf("store: log read: %w", err)
	}
	consumed := int64(0)
	for {
		nl := bytes.IndexByte(buf[consumed:], '\n')
		if nl < 0 {
			break
		}
		line := buf[consumed : consumed+int64(nl)]
		consumed += int64(nl) + 1
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var rec logRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			s.opt.Warn(fmt.Sprintf("store: %s: skipping malformed record: %.120q", s.logPath(s.gen), line))
			continue
		}
		switch {
		case rec.Job != nil:
			s.t.put(rec.Job)
		case rec.Prune != nil:
			s.t.remove(rec.Prune)
		}
	}
	if consumed < size-s.off {
		// Torn tail: the record never committed; truncate it away so
		// the next append starts on a line boundary.
		s.opt.Warn(fmt.Sprintf("store: %s: dropping torn final record (%d bytes) from a crashed writer",
			s.logPath(s.gen), (size-s.off)-consumed))
		s.opt.Control.AddTornTail()
		if err := s.logf.Truncate(s.off + consumed); err != nil {
			return fmt.Errorf("store: truncate torn tail: %w", err)
		}
	}
	s.off += consumed
	return nil
}

// appendRecords writes records to the log and compacts when it grew
// past the threshold. Caller holds the flock and has refreshed.
func (s *File) appendRecords(recs ...logRecord) error {
	var buf bytes.Buffer
	for _, r := range recs {
		b, err := json.Marshal(r)
		if err != nil {
			return fmt.Errorf("store: encode record: %w", err)
		}
		buf.Write(b)
		buf.WriteByte('\n')
	}
	n, err := s.logf.Write(buf.Bytes())
	s.off += int64(n)
	if err != nil {
		return fmt.Errorf("store: log append: %w", err)
	}
	if s.opt.Sync {
		if err := s.logf.Sync(); err != nil {
			return fmt.Errorf("store: log sync: %w", err)
		}
	}
	if s.off > s.opt.CompactBytes {
		return s.compact()
	}
	return nil
}

// compact writes the next generation's snapshot, starts a fresh log,
// and flips MANIFEST. Caller holds the flock.
func (s *File) compact() error {
	next := s.gen + 1
	sf := snapshotFile{Seq: s.t.seq, Jobs: s.t.order}
	b, err := json.Marshal(sf)
	if err != nil {
		return fmt.Errorf("store: encode snapshot: %w", err)
	}
	if err := s.writeAtomic(s.snapshotPath(next), b); err != nil {
		return err
	}
	logf, err := os.OpenFile(s.logPath(next), os.O_CREATE|os.O_RDWR|os.O_TRUNC|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := s.writeManifest(next); err != nil {
		logf.Close()
		return err
	}
	// Old generation files are garbage now; removal is best-effort.
	_ = os.Remove(s.snapshotPath(s.gen))
	_ = os.Remove(s.logPath(s.gen))
	s.logf.Close()
	s.logf, s.gen, s.off = logf, next, 0
	s.opt.Control.AddCompaction()
	return nil
}

// do wraps one store operation in the process mutex + cross-process
// flock + refresh.
func (s *File) do(op func() error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.lockf == nil {
		return errors.New("store: closed")
	}
	if err := s.flock(); err != nil {
		return err
	}
	defer s.funlock()
	if err := s.refresh(); err != nil {
		return err
	}
	return op()
}

// Create implements Store.
func (s *File) Create(j *Job) error {
	return s.do(func() error {
		c := s.t.create(j)
		j.ID, j.Seq, j.Kind, j.State = c.ID, c.Seq, c.Kind, c.State
		return s.appendRecords(logRecord{Job: c})
	})
}

// Get implements Store.
func (s *File) Get(id string) (*Job, error) {
	var out *Job
	err := s.do(func() error {
		j, err := s.t.get(id)
		if err != nil {
			return err
		}
		out = j.Clone()
		return nil
	})
	return out, err
}

// List implements Store.
func (s *File) List(f Filter) ([]*Job, error) {
	var out []*Job
	err := s.do(func() error {
		out = s.t.list(f)
		return nil
	})
	return out, err
}

// Counts implements Store.
func (s *File) Counts() (map[State]int, error) {
	var out map[State]int
	err := s.do(func() error {
		out = s.t.counts()
		return nil
	})
	return out, err
}

// Claim implements Store.
func (s *File) Claim(owner string, now time.Time, ttl time.Duration) (*Job, error) {
	var out *Job
	err := s.do(func() error {
		j := s.t.claim(owner, now, ttl)
		if j == nil {
			return nil
		}
		out = j.Clone()
		return s.appendRecords(logRecord{Job: j})
	})
	return out, err
}

// Heartbeat implements Store.
func (s *File) Heartbeat(id, owner string, now time.Time, ttl time.Duration) (bool, error) {
	var cancel bool
	err := s.do(func() error {
		j, c, err := s.t.heartbeat(id, owner, now, ttl)
		if err != nil {
			return err
		}
		cancel = c
		return s.appendRecords(logRecord{Job: j})
	})
	return cancel, err
}

// Finish implements Store.
func (s *File) Finish(id, owner string, state State, result json.RawMessage, errMsg string, now time.Time) error {
	return s.do(func() error {
		j, err := s.t.finish(id, owner, state, result, errMsg, now)
		if err != nil {
			return err
		}
		return s.appendRecords(logRecord{Job: j})
	})
}

// Release implements Store.
func (s *File) Release(id, owner string, now time.Time) error {
	return s.do(func() error {
		j, err := s.t.release(id, owner, now)
		if err != nil {
			return err
		}
		return s.appendRecords(logRecord{Job: j})
	})
}

// RequestCancel implements Store.
func (s *File) RequestCancel(id string, now time.Time) (*Job, bool, error) {
	var out *Job
	var did bool
	err := s.do(func() error {
		j, changed, err := s.t.requestCancel(id, now)
		if err != nil {
			return err
		}
		out = j.Clone()
		did = changed
		if !changed {
			return nil
		}
		return s.appendRecords(logRecord{Job: j})
	})
	return out, did, err
}

// Prune implements Store.
func (s *File) Prune(keep int) (int, error) {
	var n int
	err := s.do(func() error {
		removed := s.t.prune(keep)
		n = len(removed)
		if n == 0 {
			return nil
		}
		return s.appendRecords(logRecord{Prune: removed})
	})
	return n, err
}

// Durable implements Store: records survive the process.
func (s *File) Durable() bool { return true }

// Close implements Store.
func (s *File) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.lockf == nil {
		return nil
	}
	if s.logf != nil {
		s.logf.Close()
		s.logf = nil
	}
	err := s.lockf.Close()
	s.lockf = nil
	return err
}
