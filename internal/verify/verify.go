// Package verify checks the correctness properties the paper proves:
// proper coloring and per-class independence (Theorem 2), completeness
// (Theorem 5), the locality bound φ_v ≤ κ₂·θ_v (Theorem 4), and the
// per-cluster color ranges of Corollary 1. Experiments and tests use
// these checkers as ground-truth oracles.
package verify

import (
	"fmt"

	"radiocolor/internal/graph"
)

// Uncolored marks a node without a final color.
const Uncolored int32 = -1

// Violation is one conflicting edge: two adjacent nodes sharing a color.
type Violation struct {
	U, V  int32
	Color int32
}

// String implements fmt.Stringer.
func (v Violation) String() string {
	return fmt.Sprintf("nodes %d and %d share color %d", v.U, v.V, v.Color)
}

// Report summarizes all checks for one coloring.
type Report struct {
	// Complete is true when every node holds a color (no Uncolored).
	Complete bool
	// Proper is true when no edge connects two nodes of equal color
	// (uncolored endpoints are skipped — properness is judged on the
	// colored subgraph).
	Proper bool
	// Violations lists the conflicting edges (capped at 64).
	Violations []Violation
	// UncoloredNodes lists nodes without a color (capped at 64).
	UncoloredNodes []int32
	// NumColors is the number of distinct colors used.
	NumColors int
	// MaxColor is the highest color used (−1 if none).
	MaxColor int32
}

// OK reports whether the coloring is both complete and proper — the
// paper's correctness + completeness criterion.
func (r *Report) OK() bool { return r.Complete && r.Proper }

// String implements fmt.Stringer.
func (r *Report) String() string {
	return fmt.Sprintf("complete=%v proper=%v colors=%d max=%d violations=%d uncolored=%d",
		r.Complete, r.Proper, r.NumColors, r.MaxColor, len(r.Violations), len(r.UncoloredNodes))
}

const capList = 64

// Check validates colors against g. colors[v] is node v's color, or
// Uncolored.
func Check(g *graph.Graph, colors []int32) *Report {
	if len(colors) != g.N() {
		panic(fmt.Sprintf("verify: %d colors for %d nodes", len(colors), g.N()))
	}
	r := &Report{Complete: true, Proper: true, MaxColor: -1}
	used := make(map[int32]bool)
	for v := 0; v < g.N(); v++ {
		c := colors[v]
		if c == Uncolored {
			r.Complete = false
			if len(r.UncoloredNodes) < capList {
				r.UncoloredNodes = append(r.UncoloredNodes, int32(v))
			}
			continue
		}
		if !used[c] {
			used[c] = true
			r.NumColors++
			if c > r.MaxColor {
				r.MaxColor = c
			}
		}
		for _, u := range g.Adj(v) {
			if int(u) > v && colors[u] == c {
				r.Proper = false
				if len(r.Violations) < capList {
					r.Violations = append(r.Violations, Violation{U: int32(v), V: u, Color: c})
				}
			}
		}
	}
	return r
}

// ClassIndependence reports, per color class, whether the class forms an
// independent set — the exact statement of Theorem 2. The map contains
// an entry for every used color.
func ClassIndependence(g *graph.Graph, colors []int32) map[int32]bool {
	classes := make(map[int32][]int32)
	for v, c := range colors {
		if c != Uncolored {
			classes[c] = append(classes[c], int32(v))
		}
	}
	out := make(map[int32]bool, len(classes))
	for c, members := range classes {
		out[c] = g.IsIndependent(members)
	}
	return out
}

// LocalityViolation marks a node whose neighborhood color exceeds the
// Theorem 4 bound.
type LocalityViolation struct {
	Node  int32
	Phi   int32 // highest color in N(node)
	Bound int32 // (κ₂+1)·θ_node
}

// CheckLocality verifies Theorem 4's locality property: for every node
// v, the highest color φ_v assigned within N(v) is bounded by a function
// of the local density θ_v, the maximum degree (paper convention) within
// N²(v). The theorem states the bound as κ₂·θ_v; its proof actually
// derives φ_v ≤ (θ_v−1)(κ₂+1)+κ₂ < (κ₂+1)·θ_v (intra-cluster colors go
// up to δ_w−1 and each maps to a window of κ₂+1 colors), so we check the
// exact bound the proof yields: φ_v ≤ (κ₂+1)·θ_v. Uncolored nodes
// contribute no colors but still have degrees.
func CheckLocality(g *graph.Graph, colors []int32, kappa2 int) []LocalityViolation {
	var out []LocalityViolation
	for v := 0; v < g.N(); v++ {
		phi := int32(-1)
		if colors[v] != Uncolored {
			phi = colors[v]
		}
		for _, u := range g.Adj(v) {
			if colors[u] != Uncolored && colors[u] > phi {
				phi = colors[u]
			}
		}
		theta := 0
		for _, u := range g.TwoHop(v) {
			if d := g.Degree(int(u)); d > theta {
				theta = d
			}
		}
		bound := int32((kappa2 + 1) * theta)
		if phi > bound {
			out = append(out, LocalityViolation{Node: int32(v), Phi: phi, Bound: bound})
		}
	}
	return out
}

// PhiOverTheta returns, for every node v, the locality ratio
// φ_v / θ_v (0 when θ_v is 0 or no colors are present). Theorem 4
// bounds it by κ₂; experiment E6 reports its distribution.
func PhiOverTheta(g *graph.Graph, colors []int32) []float64 {
	out := make([]float64, g.N())
	for v := 0; v < g.N(); v++ {
		phi := int32(-1)
		if colors[v] != Uncolored {
			phi = colors[v]
		}
		for _, u := range g.Adj(v) {
			if colors[u] != Uncolored && colors[u] > phi {
				phi = colors[u]
			}
		}
		theta := 0
		for _, u := range g.TwoHop(v) {
			if d := g.Degree(int(u)); d > theta {
				theta = d
			}
		}
		if theta > 0 && phi >= 0 {
			out[v] = float64(phi) / float64(theta)
		}
	}
	return out
}

// RangeViolation marks a node whose final color fell outside the
// Corollary 1 window for its intra-cluster color.
type RangeViolation struct {
	Node  int32
	TC    int32
	Color int32
}

// CheckClusterRanges verifies Corollary 1: a non-leader node that was
// assigned intra-cluster color tc must decide on a color in
// [tc·(κ₂+1), tc·(κ₂+1)+κ₂]; leaders (tc < 0) must hold color 0.
// Uncolored nodes are skipped (completeness is Check's job).
func CheckClusterRanges(colors, tcs []int32, kappa2 int) []RangeViolation {
	var out []RangeViolation
	for v := range colors {
		c := colors[v]
		if c == Uncolored {
			continue
		}
		tc := tcs[v]
		if tc < 0 {
			if c != 0 {
				out = append(out, RangeViolation{Node: int32(v), TC: tc, Color: c})
			}
			continue
		}
		lo := tc * (int32(kappa2) + 1)
		hi := lo + int32(kappa2)
		if c < lo || c > hi {
			out = append(out, RangeViolation{Node: int32(v), TC: tc, Color: c})
		}
	}
	return out
}
