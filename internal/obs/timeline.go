package obs

import "sync"

// PhaseTotals aggregates channel events by the protocol phase of the
// acting node: transmissions by the sender's phase, deliveries and
// collisions by the listener's. Entries counts transitions into the
// phase; NodeSlots is the occupancy integral (node·slots spent in the
// phase), the denominator for per-phase rates.
type PhaseTotals struct {
	Transmissions int64
	Deliveries    int64
	Collisions    int64
	Entries       int64
	NodeSlots     int64
}

// Bucket is one aggregated time window of the run.
type Bucket struct {
	// Start is the first slot of the window; Slots how many were
	// simulated in it (equal to the bucket width except for the last).
	Start, Slots int64
	// Transmissions, Deliveries, Collisions and Decisions count the
	// window's channel events.
	Transmissions, Deliveries, Collisions, Decisions int64
	// PhaseNodes samples the phase occupancy at the window's last
	// simulated slot.
	PhaseNodes [NumPhases]int64
}

// Timeline aggregates slot events into per-phase totals and a bucketed
// time series — the "dynamics" view the paper's analysis argues about
// (phase intertwining under adversarial wake-up). It learns each node's
// phase from OnPhase (fed by internal/core through the Collector) and
// attributes channel events to the phase the node occupies when the
// event fires. All methods are safe for concurrent use.
type Timeline struct {
	mu sync.Mutex

	bucketSlots int64
	phaseOf     []Phase
	counts      [NumPhases]int64
	perPhase    [NumPhases]PhaseTotals
	buckets     []Bucket
	slots       int64
}

// NewTimeline creates a timeline for n nodes (all initially asleep)
// with the given bucket width in slots (≤ 0 means 4096).
func NewTimeline(n int, bucketSlots int64) *Timeline {
	if bucketSlots <= 0 {
		bucketSlots = 4096
	}
	tl := &Timeline{bucketSlots: bucketSlots, phaseOf: make([]Phase, n)}
	tl.counts[PhaseAsleep] = int64(n)
	return tl
}

// bucket returns the bucket covering slot, growing the series as the
// run advances. Callers hold tl.mu.
func (tl *Timeline) bucket(slot int64) *Bucket {
	idx := int(slot / tl.bucketSlots)
	for len(tl.buckets) <= idx {
		tl.buckets = append(tl.buckets, Bucket{Start: int64(len(tl.buckets)) * tl.bucketSlots})
	}
	return &tl.buckets[idx]
}

// OnPhase moves node into phase `to`.
func (tl *Timeline) OnPhase(slot int64, node int32, from, to Phase) {
	tl.mu.Lock()
	if int(node) < len(tl.phaseOf) {
		tl.phaseOf[node] = to
	}
	if int(from) < NumPhases {
		tl.counts[from]--
	}
	if int(to) < NumPhases {
		tl.counts[to]++
		tl.perPhase[to].Entries++
	}
	tl.mu.Unlock()
}

// OnTransmit attributes one transmission to the sender's phase.
func (tl *Timeline) OnTransmit(slot int64, from int32) {
	tl.mu.Lock()
	tl.perPhase[tl.phase(from)].Transmissions++
	tl.bucket(slot).Transmissions++
	tl.mu.Unlock()
}

// OnDeliver attributes one clean reception to the listener's phase.
func (tl *Timeline) OnDeliver(slot int64, to int32) {
	tl.mu.Lock()
	tl.perPhase[tl.phase(to)].Deliveries++
	tl.bucket(slot).Deliveries++
	tl.mu.Unlock()
}

// OnCollision attributes one collision to the listener's phase.
func (tl *Timeline) OnCollision(slot int64, at int32) {
	tl.mu.Lock()
	tl.perPhase[tl.phase(at)].Collisions++
	tl.bucket(slot).Collisions++
	tl.mu.Unlock()
}

// OnDecide counts one decision in the slot's bucket.
func (tl *Timeline) OnDecide(slot int64, node int32) {
	tl.mu.Lock()
	tl.bucket(slot).Decisions++
	tl.mu.Unlock()
}

// OnSlot closes the slot: occupancy integrals advance and the slot's
// bucket samples the current phase distribution.
func (tl *Timeline) OnSlot(slot int64) {
	tl.mu.Lock()
	b := tl.bucket(slot)
	b.Slots++
	for p := 0; p < NumPhases; p++ {
		tl.perPhase[p].NodeSlots += tl.counts[p]
		b.PhaseNodes[p] = tl.counts[p]
	}
	tl.slots = slot + 1
	tl.mu.Unlock()
}

// phase returns node's current phase (asleep for out-of-range ids).
// Callers hold tl.mu.
func (tl *Timeline) phase(node int32) Phase {
	if int(node) < len(tl.phaseOf) {
		return tl.phaseOf[node]
	}
	return PhaseAsleep
}

// Phases returns the per-phase aggregates.
func (tl *Timeline) Phases() [NumPhases]PhaseTotals {
	tl.mu.Lock()
	defer tl.mu.Unlock()
	return tl.perPhase
}

// Buckets returns the bucketed time series in order.
func (tl *Timeline) Buckets() []Bucket {
	tl.mu.Lock()
	defer tl.mu.Unlock()
	return append([]Bucket(nil), tl.buckets...)
}

// BucketSlots returns the configured bucket width.
func (tl *Timeline) BucketSlots() int64 { return tl.bucketSlots }

// Slots returns how many slots the timeline has seen.
func (tl *Timeline) Slots() int64 {
	tl.mu.Lock()
	defer tl.mu.Unlock()
	return tl.slots
}
