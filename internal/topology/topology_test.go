package topology

import (
	"math"
	"testing"

	"radiocolor/internal/geom"
	"radiocolor/internal/graph"
)

func TestRandomUDGDeterministic(t *testing.T) {
	cfg := UDGConfig{N: 100, Side: 10, Radius: 1.5, Seed: 42}
	a := RandomUDG(cfg)
	b := RandomUDG(cfg)
	if a.G.M() != b.G.M() {
		t.Fatalf("same seed, different edge counts: %d vs %d", a.G.M(), b.G.M())
	}
	for i := range a.Points {
		if a.Points[i] != b.Points[i] {
			t.Fatalf("same seed, different points at %d", i)
		}
	}
	c := RandomUDG(UDGConfig{N: 100, Side: 10, Radius: 1.5, Seed: 43})
	same := true
	for i := range a.Points {
		if a.Points[i] != c.Points[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical placements")
	}
}

func TestRandomUDGEdgesMatchDistance(t *testing.T) {
	d := RandomUDG(UDGConfig{N: 120, Side: 8, Radius: 1.2, Seed: 7})
	for i := 0; i < d.N(); i++ {
		for j := i + 1; j < d.N(); j++ {
			within := d.Points[i].Dist(d.Points[j]) <= d.Radius
			if d.G.HasEdge(i, j) != within {
				t.Fatalf("edge (%d,%d) = %v, distance predicate = %v", i, j, d.G.HasEdge(i, j), within)
			}
		}
	}
	if err := d.G.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestUDGSmallNUsesBruteForce(t *testing.T) {
	// Fewer than 65 points bypasses the grid; the result must still match
	// the distance predicate.
	d := RandomUDG(UDGConfig{N: 30, Side: 4, Radius: 1, Seed: 3})
	for i := 0; i < d.N(); i++ {
		for j := i + 1; j < d.N(); j++ {
			if d.G.HasEdge(i, j) != (d.Points[i].Dist(d.Points[j]) <= 1) {
				t.Fatalf("mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestUDGKappaBounds(t *testing.T) {
	// Theory: unit disk graphs have κ₁ ≤ 5 and κ₂ ≤ 18 (Sect. 2).
	for seed := int64(0); seed < 5; seed++ {
		d := RandomUDG(UDGConfig{N: 250, Side: 6, Radius: 1, Seed: seed})
		k := d.G.Kappa(graph.KappaOptions{Budget: 500_000})
		if k.K1 > 5 {
			t.Errorf("seed %d: κ₁ = %d > 5 in a UDG", seed, k.K1)
		}
		if k.K2 > 18 {
			t.Errorf("seed %d: κ₂ = %d > 18 in a UDG", seed, k.K2)
		}
	}
}

func TestUDGWithTargetDegree(t *testing.T) {
	for _, target := range []int{5, 10, 20} {
		d := UDGWithTargetDegree(400, target, 11)
		avg := d.G.AvgDegree()
		// Boundary effects pull the average below target; allow a wide
		// band but insist on the right order of magnitude.
		if avg < float64(target)*0.5 || avg > float64(target)*1.4 {
			t.Errorf("target %d: average degree %.2f out of band", target, avg)
		}
	}
	// Degenerate target is clamped rather than dividing by zero.
	d := UDGWithTargetDegree(50, 1, 1)
	if d.N() != 50 {
		t.Error("clamped generator failed")
	}
}

func TestClusteredUDGDensityContrast(t *testing.T) {
	d := ClusteredUDG(80, 40, 20, 1.0, 5)
	if d.N() != 120 {
		t.Fatalf("N = %d, want 120", d.N())
	}
	// The max degree over core nodes should exceed the fringe max: the
	// core is a deliberate hot spot.
	coreMax, fringeMax := 0, 0
	for v := 0; v < 80; v++ {
		if deg := d.G.Degree(v); deg > coreMax {
			coreMax = deg
		}
	}
	for v := 80; v < 120; v++ {
		if deg := d.G.Degree(v); deg > fringeMax {
			fringeMax = deg
		}
	}
	if coreMax <= fringeMax {
		t.Errorf("core max degree %d not above fringe max %d", coreMax, fringeMax)
	}
}

func TestBIGWithWallsSeversLinks(t *testing.T) {
	cfg := UDGConfig{N: 200, Side: 8, Radius: 1.2, Seed: 9}
	plain := RandomUDG(cfg)
	walled := BIGWithWalls(cfg, 40)
	if walled.Obstacles.Count() != 40 {
		t.Fatalf("walls = %d, want 40", walled.Obstacles.Count())
	}
	if walled.G.M() >= plain.G.M() {
		t.Errorf("walls removed no edges: %d vs %d", walled.G.M(), plain.G.M())
	}
	// Every edge present must respect distance and visibility.
	for i := 0; i < walled.N(); i++ {
		for _, j := range walled.G.Adj(i) {
			if walled.Points[i].Dist(walled.Points[j]) > cfg.Radius {
				t.Fatalf("edge (%d,%d) too long", i, j)
			}
			if walled.Obstacles.Blocked(walled.Points[i], walled.Points[j]) {
				t.Fatalf("edge (%d,%d) crosses a wall", i, j)
			}
		}
	}
	// Zero walls must reproduce the plain UDG.
	same := BIGWithWalls(cfg, 0)
	if same.G.M() != plain.G.M() {
		t.Errorf("0 walls: %d edges vs plain %d", same.G.M(), plain.G.M())
	}
}

func TestUnitBallGraphMetrics(t *testing.T) {
	cfg := UDGConfig{N: 150, Side: 6, Radius: 1, Seed: 21}
	euclid := UnitBallGraph(cfg, geom.Euclidean{})
	plain := RandomUDG(cfg)
	if euclid.G.M() != plain.G.M() {
		t.Errorf("UBG under Euclidean should equal UDG: %d vs %d edges", euclid.G.M(), plain.G.M())
	}
	// Chebyshev balls (squares) strictly contain Euclidean balls of the
	// same radius → at least as many edges.
	cheb := UnitBallGraph(cfg, geom.Chebyshev{})
	if cheb.G.M() < euclid.G.M() {
		t.Errorf("Chebyshev UBG has fewer edges (%d) than Euclidean (%d)", cheb.G.M(), euclid.G.M())
	}
	// Hub metric adds long-range links through the hub.
	hub := UnitBallGraph(cfg, geom.HubMetric{Hub: geom.Point{X: 3, Y: 3}, Factor: 0.2})
	if hub.G.M() <= euclid.G.M() {
		t.Errorf("hub UBG added no links: %d vs %d", hub.G.M(), euclid.G.M())
	}
}

func TestGridGraph(t *testing.T) {
	d := GridGraph(4, 5, 1.0, 1.1)
	if d.N() != 20 {
		t.Fatalf("N = %d", d.N())
	}
	// 4-neighbor lattice: edges = rows*(cols-1) + cols*(rows-1).
	want := 4*4 + 5*3
	if d.G.M() != want {
		t.Errorf("M = %d, want %d", d.G.M(), want)
	}
	// Diagonal radius picks up 8-neighborhoods.
	diag := GridGraph(4, 5, 1.0, 1.5)
	if diag.G.M() <= d.G.M() {
		t.Error("diagonal radius should add edges")
	}
}

func TestStructuredTopologies(t *testing.T) {
	ring := Ring(10)
	if ring.G.M() != 10 || ring.G.MaxDegree() != 3 {
		t.Errorf("ring: M=%d Δ=%d", ring.G.M(), ring.G.MaxDegree())
	}
	clique := Clique(7)
	if clique.G.M() != 21 || clique.G.MaxDegree() != 7 {
		t.Errorf("clique: M=%d Δ=%d", clique.G.M(), clique.G.MaxDegree())
	}
	star := Star(9)
	if star.G.M() != 8 || star.G.Degree(0) != 9 {
		t.Errorf("star: M=%d deg(hub)=%d", star.G.M(), star.G.Degree(0))
	}
	tree := RandomTree(50, 3)
	if tree.G.M() != 49 || !tree.G.Connected() {
		t.Errorf("tree: M=%d connected=%v", tree.G.M(), tree.G.Connected())
	}
	bip := CompleteBipartite(3, 4)
	if bip.G.M() != 12 {
		t.Errorf("bipartite: M=%d, want 12", bip.G.M())
	}
	if bip.G.HasEdge(0, 1) || !bip.G.HasEdge(0, 3) {
		t.Error("bipartite structure wrong")
	}
}

func TestCorridorIsElongated(t *testing.T) {
	d := CorridorUDG(150, 30, 2, 1.0, 13)
	if d.N() != 150 {
		t.Fatal("wrong N")
	}
	var maxX, maxY float64
	for _, p := range d.Points {
		maxX = math.Max(maxX, p.X)
		maxY = math.Max(maxY, p.Y)
	}
	if maxX < 20 || maxY > 2 {
		t.Errorf("corridor shape wrong: maxX=%.1f maxY=%.1f", maxX, maxY)
	}
}

func TestDeploymentNames(t *testing.T) {
	// Names feed experiment tables; they must be nonempty and distinct
	// across generators.
	names := map[string]bool{}
	for _, d := range []*Deployment{
		RandomUDG(UDGConfig{N: 10, Side: 3, Radius: 1, Seed: 1}),
		ClusteredUDG(5, 5, 5, 1, 1),
		BIGWithWalls(UDGConfig{N: 10, Side: 3, Radius: 1, Seed: 1}, 2),
		UnitBallGraph(UDGConfig{N: 10, Side: 3, Radius: 1, Seed: 1}, geom.Manhattan{}),
		GridGraph(2, 2, 1, 1.1),
		Ring(5), Clique(4), Star(4), RandomTree(5, 1), CompleteBipartite(2, 2),
		CorridorUDG(10, 10, 1, 1, 1),
	} {
		if d.Name == "" {
			t.Error("empty deployment name")
		}
		if names[d.Name] {
			t.Errorf("duplicate name %q", d.Name)
		}
		names[d.Name] = true
	}
}
